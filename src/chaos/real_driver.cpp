#include "chaos/real_driver.h"

#include "common/clock.h"
#include "common/strings.h"
#include "engine/engine.h"  // BandwidthScope constants
#include "obs/metric_names.h"

namespace iov::chaos {

RealChaosDriver::RealChaosDriver(observer::Observer& observer, FaultPlan plan,
                                 Binding binding)
    : observer_(observer),
      plan_(std::move(plan)),
      binding_(std::move(binding)),
      recovery_latency_(observer.metrics().histogram(
          obs::names::kChaosRecoveryLatencySeconds)) {}

NodeId RealChaosDriver::resolve(const std::string& name) const {
  const auto it = binding_.find(name);
  if (it != binding_.end()) return it->second;
  const auto parsed = NodeId::parse(name);
  return parsed ? *parsed : NodeId();
}

void RealChaosDriver::run() {
  const TimePoint start = RealClock::instance().now();
  for (const FaultEvent& e : plan_.events()) {
    const TimePoint due = start + e.at;
    const TimePoint now = RealClock::instance().now();
    if (due > now) sleep_for(due - now);
    apply(e);
  }
}

bool RealChaosDriver::await_recovery(const std::function<bool()>& recovered,
                                     Duration poll, Duration timeout) {
  const TimePoint deadline = RealClock::instance().now() + timeout;
  while (!recovered()) {
    if (RealClock::instance().now() >= deadline) return false;
    sleep_for(poll);
  }
  recovery_latency_.observe(
      to_seconds(RealClock::instance().now() - last_fault_));
  return true;
}

void RealChaosDriver::apply(const FaultEvent& e) {
  observer_.metrics()
      .counter(obs::names::kChaosFaultsInjectedTotal,
               {{"kind", fault_kind_name(e.kind)}})
      .inc();
  last_fault_ = RealClock::instance().now();

  std::string line = strf("[%12.6f] %s", to_seconds(e.at),
                          fault_kind_name(e.kind));
  const auto name_of = [&](const std::string& n) {
    return n + " (" + resolve(n).to_string() + ")";
  };
  bool ok = true;

  switch (e.kind) {
    case FaultKind::kKillNode:
      line += ' ' + name_of(e.a);
      ok = observer_.terminate_node(resolve(e.a));
      break;
    case FaultKind::kSeverLink:
      line += ' ' + name_of(e.a) + ' ' + name_of(e.b);
      ok = observer_.sever_link(resolve(e.a), resolve(e.b));
      break;
    case FaultKind::kSetLoss:
      line += ' ' + name_of(e.a) + ' ' + name_of(e.b) +
              strf(" p=%.6f", e.value);
      ok = observer_.set_loss(resolve(e.a), resolve(e.b), e.value);
      break;
    case FaultKind::kSlowLink:
      line += ' ' + name_of(e.a) + ' ' + name_of(e.b) +
              strf(" bps=%.0f", e.value);
      ok = observer_.set_bandwidth(resolve(e.a), engine::kBwLinkUp, e.value,
                                   resolve(e.b));
      break;
    case FaultKind::kPartition: {
      // No wire support for a true cut on the real substrate: sever every
      // cross-group link instead. The overlay may re-dial afterwards —
      // acceptable for churn workloads, documented in DESIGN.md §7.
      for (std::size_t g = 0; g < e.groups.size(); ++g) {
        if (g > 0) line += " |";
        for (const std::string& n : e.groups[g]) line += ' ' + name_of(n);
      }
      for (std::size_t g = 0; g < e.groups.size(); ++g) {
        for (std::size_t h = g + 1; h < e.groups.size(); ++h) {
          for (const std::string& a : e.groups[g]) {
            for (const std::string& b : e.groups[h]) {
              ok &= observer_.sever_link(resolve(a), resolve(b));
            }
          }
        }
      }
      break;
    }
    case FaultKind::kHeal:
      break;  // real engines re-dial on demand; nothing to lift
  }
  line += ok ? " ok" : " failed";
  trace_.push_back(std::move(line));
}

std::string RealChaosDriver::trace_text() const {
  std::string out;
  for (const std::string& line : trace_) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace iov::chaos
