#include "chaos/sim_driver.h"

#include "common/strings.h"
#include "engine/engine.h"  // BandwidthScope constants
#include "obs/metric_names.h"

namespace iov::chaos {

SimChaosDriver::SimChaosDriver(sim::SimNet& net, FaultPlan plan,
                               Binding binding)
    : net_(net),
      plan_(std::move(plan)),
      binding_(std::move(binding)),
      base_(net.now()),
      last_fault_(net.now()),
      recovery_latency_(net.metrics().histogram(
          obs::names::kChaosRecoveryLatencySeconds)) {}

NodeId SimChaosDriver::resolve(const std::string& name) const {
  const auto it = binding_.find(name);
  if (it != binding_.end()) return it->second;
  // Plans may also name nodes by their literal "ip:port" id.
  const auto parsed = NodeId::parse(name);
  return parsed ? *parsed : NodeId();
}

void SimChaosDriver::run_until(TimePoint t) {
  const auto& events = plan_.events();
  while (next_ < events.size() && base_ + events[next_].at <= t) {
    const FaultEvent& e = events[next_];
    net_.run_until(base_ + e.at);
    apply(e);
    ++next_;
  }
  net_.run_until(t);
}

bool SimChaosDriver::await_recovery(const std::function<bool()>& recovered,
                                    Duration step, TimePoint deadline) {
  while (!recovered()) {
    if (net_.now() >= deadline) return false;
    run_until(std::min(net_.now() + step, deadline));
  }
  recovery_latency_.observe(to_seconds(net_.now() - last_fault_));
  return true;
}

void SimChaosDriver::apply(const FaultEvent& e) {
  net_.metrics()
      .counter(obs::names::kChaosFaultsInjectedTotal,
               {{"kind", fault_kind_name(e.kind)}})
      .inc();
  last_fault_ = net_.now();

  std::string line =
      strf("[%12.6f] %s", to_seconds(net_.now()), fault_kind_name(e.kind));
  const auto name_of = [&](const std::string& n) {
    return n + " (" + resolve(n).to_string() + ")";
  };

  switch (e.kind) {
    case FaultKind::kKillNode:
      line += ' ' + name_of(e.a);
      net_.kill_node(resolve(e.a));
      break;
    case FaultKind::kSeverLink:
      line += ' ' + name_of(e.a) + ' ' + name_of(e.b);
      net_.sever_link(resolve(e.a), resolve(e.b));
      break;
    case FaultKind::kSetLoss:
      line += ' ' + name_of(e.a) + ' ' + name_of(e.b) +
              strf(" p=%.6f", e.value);
      net_.set_loss(resolve(e.a), resolve(e.b), e.value);
      break;
    case FaultKind::kSlowLink:
      line += ' ' + name_of(e.a) + ' ' + name_of(e.b) +
              strf(" bps=%.0f", e.value);
      net_.post(resolve(e.a),
                Msg::control(MsgType::kSetBandwidth, NodeId(), kControlApp,
                             engine::kBwLinkUp, static_cast<i32>(e.value),
                             resolve(e.b).to_string()));
      break;
    case FaultKind::kPartition: {
      std::vector<std::vector<NodeId>> groups;
      for (std::size_t g = 0; g < e.groups.size(); ++g) {
        if (g > 0) line += " |";
        std::vector<NodeId> ids;
        for (const std::string& n : e.groups[g]) {
          line += ' ' + name_of(n);
          ids.push_back(resolve(n));
        }
        groups.push_back(std::move(ids));
      }
      net_.partition(groups);
      break;
    }
    case FaultKind::kHeal:
      net_.heal();
      break;
  }
  trace_.push_back(std::move(line));
}

std::string SimChaosDriver::trace_text() const {
  std::string out;
  for (const std::string& line : trace_) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace iov::chaos
