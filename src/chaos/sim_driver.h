// SimChaosDriver — executes a FaultPlan on the deterministic simulator.
//
// The driver owns the clock discipline: run_until() advances the SimNet
// to each due event's *exact* virtual time before applying it through
// SimNet's fault hooks (kill_node / sever_link / set_loss / partition /
// heal / kSetBandwidth). Because the simulator is seeded and single-
// threaded, replaying the same plan against the same topology yields a
// byte-identical fault trace and identical post-fault state — the
// determinism the chaos test tier asserts.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "chaos/fault_plan.h"
#include "obs/metrics.h"
#include "sim/sim_net.h"

namespace iov::chaos {

class SimChaosDriver {
 public:
  /// Event times in `plan` are relative to the sim time at construction.
  SimChaosDriver(sim::SimNet& net, FaultPlan plan, Binding binding);

  /// Advances the net to `t`, applying every event due on the way at its
  /// exact sim time.
  void run_until(TimePoint t);
  void run_for(Duration d) { run_until(net_.now() + d); }

  /// True once every event has been applied.
  bool done() const { return next_ >= plan_.events().size(); }

  /// Steps the net in `step` increments until `recovered()` holds or
  /// `deadline` passes; on success observes the time since the last
  /// applied fault in iov_chaos_recovery_latency_seconds.
  bool await_recovery(const std::function<bool()>& recovered, Duration step,
                      TimePoint deadline);

  /// One line per applied event, stamped with the sim time and the
  /// resolved node ids — the deterministic fault trace.
  const std::vector<std::string>& trace() const { return trace_; }
  std::string trace_text() const;

 private:
  void apply(const FaultEvent& e);
  NodeId resolve(const std::string& name) const;

  sim::SimNet& net_;
  FaultPlan plan_;
  Binding binding_;
  std::size_t next_ = 0;
  TimePoint base_;
  TimePoint last_fault_ = 0;
  std::vector<std::string> trace_;
  obs::Histogram& recovery_latency_;
};

}  // namespace iov::chaos
