// chaos::verify — recovery-verification helpers for the fault-injection
// test tier (DESIGN.md §7). These turn the robustness claims of paper
// §2.2 into assertable predicates:
//
//   * Domino teardown completeness — after a fault settles, no alive
//     node still counts a dead or unreachable peer as an upstream;
//   * session teardown — the sessions a fault was supposed to kill are
//     gone everywhere (and the chaos teardown counter records them);
//   * disjoint-flow non-disturbance and flow conservation — read off the
//     PR-1 metrics snapshots and the sim link meters;
//   * surviving-session sets — a canonical string over (node, app,
//     role), so two replays can be compared byte-for-byte.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/sim_net.h"

namespace iov::chaos {

struct VerifyResult {
  bool ok = true;
  std::vector<std::string> failures;

  explicit operator bool() const { return ok; }
  void fail(std::string what) {
    ok = false;
    failures.push_back(std::move(what));
  }
  std::string to_string() const;
};

/// Sum of all counter/gauge samples named `name` whose labels contain
/// every pair in `labels` (subset match). 0 when absent.
double counter_value(const obs::MetricsSnapshot& snapshot,
                     std::string_view name, const obs::Labels& labels = {});

/// Canonical surviving-session set of a simulated overlay: one line
/// "node app role" per live (node, session) pair — role `source` for an
/// active deployed source, `recv` for a session still fed by some
/// upstream — sorted, '\n'-joined. Byte-identical across same-seed
/// replays; the key artifact for determinism assertions.
std::string surviving_sessions(const sim::SimNet& net);

/// Domino teardown completeness: every alive node's upstream bookkeeping
/// must point at alive peers with open links. A dangling upstream means a
/// failure notice was lost and the Domino stopped halfway.
VerifyResult verify_domino_teardown(const sim::SimNet& net);

/// Asserts session `app` is fully torn down on each of `nodes` (not a
/// source, no upstream feeding it). On success increments
/// iov_chaos_sessions_torn_down_total (sim registry) once per node.
VerifyResult verify_session_teardown(sim::SimNet& net, u32 app,
                                     const std::vector<NodeId>& nodes);

/// Flow conservation on the directed sim link a->b: bytes delivered plus
/// bytes recorded lost never exceed bytes sent (the difference is at most
/// the in-flight window).
VerifyResult verify_flow_conservation(const sim::SimNet& net, const NodeId& a,
                                      const NodeId& b);

}  // namespace iov::chaos
