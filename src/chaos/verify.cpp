#include "chaos/verify.h"

#include <algorithm>
#include <map>

#include "common/strings.h"
#include "obs/metric_names.h"

namespace iov::chaos {

std::string VerifyResult::to_string() const {
  if (ok) return "ok";
  std::string out;
  for (const std::string& f : failures) {
    if (!out.empty()) out += "; ";
    out += f;
  }
  return out;
}

double counter_value(const obs::MetricsSnapshot& snapshot,
                     std::string_view name, const obs::Labels& labels) {
  double sum = 0.0;
  for (const obs::MetricSample& s : snapshot.samples) {
    if (s.name != name) continue;
    const bool match = std::all_of(
        labels.begin(), labels.end(), [&](const auto& want) {
          return std::find(s.labels.begin(), s.labels.end(), want) !=
                 s.labels.end();
        });
    if (match) sum += s.value;
  }
  return sum;
}

std::string surviving_sessions(const sim::SimNet& net) {
  // Sessions known anywhere in the overlay (sets keep output canonical).
  std::set<u32> apps;
  for (const NodeId& id : net.node_ids()) {
    const sim::SimEngine* n = net.node(id);
    if (n == nullptr) continue;
    for (const auto& [peer, peer_apps] : n->up_apps()) {
      apps.insert(peer_apps.begin(), peer_apps.end());
    }
    for (const auto& [peer, peer_apps] : n->down_apps()) {
      apps.insert(peer_apps.begin(), peer_apps.end());
    }
    apps.insert(n->joined_apps().begin(), n->joined_apps().end());
  }

  std::string out;
  for (const NodeId& id : net.node_ids()) {
    const sim::SimEngine* n = net.node(id);
    if (n == nullptr || !n->alive()) continue;
    for (const u32 app : apps) {
      if (n->is_source(app)) {
        out += strf("%s %u source\n", id.to_string().c_str(), app);
        continue;
      }
      bool receiving = false;
      for (const auto& [peer, peer_apps] : n->up_apps()) {
        if (peer_apps.count(app) > 0) {
          receiving = true;
          break;
        }
      }
      if (receiving) {
        out += strf("%s %u recv\n", id.to_string().c_str(), app);
      }
    }
  }
  return out;
}

VerifyResult verify_domino_teardown(const sim::SimNet& net) {
  VerifyResult r;
  for (const NodeId& id : net.node_ids()) {
    const sim::SimEngine* n = net.node(id);
    if (n == nullptr || !n->alive()) continue;
    for (const auto& [peer, peer_apps] : n->up_apps()) {
      const sim::SimEngine* up = net.node(peer);
      if (up == nullptr || !up->alive()) {
        r.fail(strf("%s still lists dead upstream %s",
                    id.to_string().c_str(), peer.to_string().c_str()));
        continue;
      }
      if (!net.link_open(peer, id)) {
        r.fail(strf("%s still lists upstream %s over a closed link",
                    id.to_string().c_str(), peer.to_string().c_str()));
      }
    }
  }
  return r;
}

VerifyResult verify_session_teardown(sim::SimNet& net, u32 app,
                                     const std::vector<NodeId>& nodes) {
  VerifyResult r;
  for (const NodeId& id : nodes) {
    const sim::SimEngine* n = net.node(id);
    if (n == nullptr || !n->alive()) continue;  // dead: trivially torn down
    if (n->is_source(app)) {
      r.fail(strf("%s still sources app %u", id.to_string().c_str(), app));
    }
    for (const auto& [peer, peer_apps] : n->up_apps()) {
      if (peer_apps.count(app) > 0) {
        r.fail(strf("%s still fed app %u by %s", id.to_string().c_str(), app,
                    peer.to_string().c_str()));
      }
    }
  }
  if (r.ok) {
    net.metrics()
        .counter(obs::names::kChaosSessionsTornDownTotal)
        .inc(nodes.size());
  }
  return r;
}

VerifyResult verify_flow_conservation(const sim::SimNet& net, const NodeId& a,
                                      const NodeId& b) {
  VerifyResult r;
  const u64 sent = net.link_sent_bytes(a, b);
  const u64 delivered = net.link_delivered_bytes(a, b);
  if (delivered > sent) {
    r.fail(strf("link %s->%s delivered %llu bytes but only %llu were sent",
                a.to_string().c_str(), b.to_string().c_str(),
                static_cast<unsigned long long>(delivered),
                static_cast<unsigned long long>(sent)));
  }
  return r;
}

}  // namespace iov::chaos
