// RealChaosDriver — executes a FaultPlan against live engines through the
// observer control plane (the same wire commands `iov_observerd` exposes
// as `kill` / `sever` / `loss` console verbs).
//
// Event times are wall-clock offsets from run()'s start. Kills go through
// kTerminateNode, severs through kSeverLink (the target runs
// Engine::handle_link_failure non-deliberately, its peer perceives the
// TCP EOF), loss through kSetLoss, slow-link through kSetBandwidth.
// Partitions are emulated by severing every cross-group link; heal is a
// no-op because real engines re-dial on demand once traffic flows.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "chaos/fault_plan.h"
#include "observer/observer.h"

namespace iov::chaos {

class RealChaosDriver {
 public:
  RealChaosDriver(observer::Observer& observer, FaultPlan plan,
                  Binding binding);

  /// Executes the whole plan, sleeping between events; blocks until the
  /// last event has been issued.
  void run();

  /// Polls `recovered()` every `poll` until it holds or `timeout` passes;
  /// on success observes the time since the last issued fault in
  /// iov_chaos_recovery_latency_seconds (observer registry).
  bool await_recovery(const std::function<bool()>& recovered, Duration poll,
                      Duration timeout);

  /// One line per issued event with resolved ids and the control-plane
  /// outcome ("ok" / "failed").
  const std::vector<std::string>& trace() const { return trace_; }
  std::string trace_text() const;

 private:
  void apply(const FaultEvent& e);
  NodeId resolve(const std::string& name) const;

  observer::Observer& observer_;
  FaultPlan plan_;
  Binding binding_;
  TimePoint last_fault_ = 0;
  std::vector<std::string> trace_;
  obs::Histogram& recovery_latency_;
};

}  // namespace iov::chaos
