// Message framing over TCP streams.
//
// Every iOverlay connection begins with a 16-byte hello identifying the
// connection kind and the dialing node, then carries a sequence of
// messages framed as [24-byte header | payload] (paper Fig. 3).
//
// Hello layout (big-endian):
//     magic   4 bytes  "IOV1"
//     kind    4 bytes  ConnKind
//     ip      4 bytes  dialing node's publicized IPv4
//     port    4 bytes  dialing node's publicized port
//
// The publicized address in the hello is what lets persistent connections
// be shared: the accepting engine keys the connection by the *node id*
// the peer listens on, not by the ephemeral source port of the TCP
// connection itself.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <vector>

#include "common/node_id.h"
#include "message/codec.h"
#include "message/msg.h"
#include "message/slab_pool.h"
#include "net/socket.h"

namespace iov {

/// What a freshly accepted connection will carry.
enum class ConnKind : u32 {
  /// A persistent node-to-node connection: data and protocol messages,
  /// one per pair of nodes, reused by all applications (paper §2.2,
  /// "persistent connections").
  kPersistent = 1,
  /// A transient control connection (observer commands, one-shot protocol
  /// messages, cross-thread notifications through the publicized port).
  kControl = 2,
};

struct Hello {
  ConnKind kind = ConnKind::kControl;
  NodeId sender;
};

/// The hello's fixed wire length.
constexpr std::size_t kHelloBytes = 16;

/// Serializes the hello (the reactor path queues these bytes for a
/// non-blocking write instead of write_hello's blocking call).
std::array<u8, kHelloBytes> encode_hello(const Hello& hello);

/// Writes the connection hello. False on socket error.
bool write_hello(TcpConn& conn, const Hello& hello);

/// Reads and validates the hello; nullopt on bad magic or socket error.
std::optional<Hello> read_hello(TcpConn& conn);

/// Writes one framed message (header + payload). The two parts go out in
/// a single scatter-gather syscall, so a header is never its own TCP
/// segment even with Nagle disabled. False on socket error.
bool write_msg(TcpConn& conn, const Msg& m);

/// Messages coalesced into one scatter-gather flush (2 iovecs each).
constexpr std::size_t kMaxWireBatch = 32;

/// Writes `n` framed messages, coalescing up to kMaxWireBatch of them per
/// sendmsg call. Byte-identical on the wire to n write_msg() calls, so
/// batched and unbatched peers interoperate. `syscalls`, when non-null,
/// accumulates the sendmsg calls issued. False on any socket error (the
/// stream position is then undefined — the connection must be torn down,
/// which is what the engine does anyway).
bool write_batch(TcpConn& conn, const MsgPtr* msgs, std::size_t n,
                 u64* syscalls = nullptr);

/// MSG_ZEROCOPY variant of write_batch (byte-identical on the wire).
/// The kernel reads the referenced pages at *transmit* time, not at
/// sendmsg time, so everything the iovecs point at must stay alive
/// until the completions are reaped: the payloads (keep the MsgPtrs)
/// and the encoded headers — which is why `headers` is caller-owned
/// storage, resized and filled here, to be retained alongside the
/// MsgPtrs in the in-flight record. `zc_calls` accumulates the number
/// of completion ids the kernel assigned (one per flagged sendmsg; see
/// TcpConn::reap_zerocopy). ENOBUFS falls back to plain sends
/// mid-write, so some calls may consume fewer ids than syscalls.
bool write_batch_zerocopy(TcpConn& conn, const MsgPtr* msgs, std::size_t n,
                          std::vector<codec::HeaderBytes>& headers,
                          u64* syscalls = nullptr, u64* zc_calls = nullptr);

/// Reads one framed message with exact-size reads (two recv syscalls and
/// one payload allocation per message). nullptr on EOF, socket error, or
/// a corrupt header. This is the legacy/control-plane path; the data
/// plane uses FrameReader below.
MsgPtr read_msg(TcpConn& conn);

/// Bulk frame decoder: recv()s into a reusable chunk buffer, decodes as
/// many complete frames per syscall as arrived, and hands payloads out as
/// ref-counted Buffer slices of the chunk — zero per-message allocations
/// on the hot path. A chunk stays alive until the last payload slice
/// referencing it is released; the reader only appends to a chunk, never
/// rewrites bytes a slice may see, so slices are safe to read from other
/// threads once handed over (the engine's bounded queues provide the
/// happens-before edge).
///
/// Frames larger than the chunk take the large-frame path: the payload
/// is recv'd *directly* into a payload-sized destination — a recycled
/// slab from the SlabPool when one was supplied (zero copy, zero
/// per-message payload allocation; the slab returns to the pool when
/// the last Buffer slice referencing it is released), or a dedicated
/// vector otherwise (the legacy fallback). After a large frame the
/// reader expects another one and reads the next header *exactly*
/// (never slurping payload bytes into the chunk), so a steady stream of
/// large frames is decoded without ever copying a payload byte; the
/// guess costs one small extra recv when the stream turns small again.
///
/// Wire-format compatible with read_msg: the byte stream is identical,
/// only the syscall/allocation pattern differs.
class FrameReader {
 public:
  /// Default recv chunk; bounds read-ahead (and thus how far the receiver
  /// can run ahead of per-message pacing) to one socket buffer's worth.
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  /// `pool`, when non-null, serves the large-frame payload slabs and
  /// must outlive the reader (the slabs themselves may outlive both).
  explicit FrameReader(TcpConn& conn,
                       std::size_t chunk_bytes = kDefaultChunkBytes,
                       SlabPool* pool = nullptr);

  FrameReader(const FrameReader&) = delete;
  FrameReader& operator=(const FrameReader&) = delete;

  /// Next decoded message; nullptr on EOF, socket error, or a corrupt
  /// header (the reader then fails permanently) — or, on a non-blocking
  /// socket, when no complete frame has arrived yet (would_block() then
  /// reads true and the reader is NOT failed: call next() again when the
  /// socket turns readable; a partially received large frame resumes
  /// where it stopped).
  MsgPtr next();

  /// True when the last next() returned nullptr only because the
  /// non-blocking socket had no more bytes (EAGAIN), not because the
  /// stream ended. Reset by every next() call.
  bool would_block() const { return would_block_; }

  /// True when the stream died on a malformed header rather than EOF.
  bool corrupt() const { return corrupt_; }

  /// True when next() can produce a result (a decoded frame, or the
  /// pending stream error) from already-buffered bytes alone — i.e. it
  /// will not issue a recv syscall. Lets callers batch work between
  /// blocking reads.
  bool buffered() const;

  /// recv syscalls issued so far (for iov_link_syscalls_total).
  u64 syscalls() const { return syscalls_; }

  /// Messages decoded so far.
  u64 msgs() const { return msgs_; }

 private:
  std::size_t available() const { return end_ - pos_; }
  /// Reads more bytes into the chunk; recvs at most `cap` bytes (the
  /// default is "fill the chunk").
  bool refill(std::size_t cap = static_cast<std::size_t>(-1));
  MsgPtr read_large(const codec::Header& header);
  /// Continues a partially received large frame (see LargePending).
  MsgPtr resume_large();

  TcpConn& conn_;
  const std::size_t chunk_bytes_;
  SlabPool* const pool_;
  std::shared_ptr<std::vector<u8>> chunk_;
  std::size_t pos_ = 0;  ///< first undecoded byte in *chunk_
  std::size_t end_ = 0;  ///< one past the last received byte
  /// Whether a payload slice of the current chunk was ever handed out.
  /// Once true the chunk is append-only for the rest of its life: refill
  /// never rewinds it, it is replaced instead (see refill()).
  bool chunk_sliced_ = false;
  /// The previous frame exceeded the chunk: read the next header exactly
  /// instead of bulk-filling the chunk, so the payload that likely
  /// follows can be recv'd straight into its slab with no seed copy.
  bool expect_large_ = false;
  u64 syscalls_ = 0;
  u64 msgs_ = 0;
  bool failed_ = false;
  bool corrupt_ = false;
  bool would_block_ = false;
  /// Partially received large frame awaiting more bytes (non-blocking
  /// sockets only): the destination stays put across next() calls.
  struct LargePending {
    codec::Header header;
    SlabPtr slab;           ///< pool destination, or
    std::vector<u8> bytes;  ///< dedicated fallback
    std::size_t got = 0;
  };
  std::optional<LargePending> large_;
};

}  // namespace iov
