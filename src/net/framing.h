// Message framing over TCP streams.
//
// Every iOverlay connection begins with a 16-byte hello identifying the
// connection kind and the dialing node, then carries a sequence of
// messages framed as [24-byte header | payload] (paper Fig. 3).
//
// Hello layout (big-endian):
//     magic   4 bytes  "IOV1"
//     kind    4 bytes  ConnKind
//     ip      4 bytes  dialing node's publicized IPv4
//     port    4 bytes  dialing node's publicized port
//
// The publicized address in the hello is what lets persistent connections
// be shared: the accepting engine keys the connection by the *node id*
// the peer listens on, not by the ephemeral source port of the TCP
// connection itself.
#pragma once

#include <optional>

#include "common/node_id.h"
#include "message/msg.h"
#include "net/socket.h"

namespace iov {

/// What a freshly accepted connection will carry.
enum class ConnKind : u32 {
  /// A persistent node-to-node connection: data and protocol messages,
  /// one per pair of nodes, reused by all applications (paper §2.2,
  /// "persistent connections").
  kPersistent = 1,
  /// A transient control connection (observer commands, one-shot protocol
  /// messages, cross-thread notifications through the publicized port).
  kControl = 2,
};

struct Hello {
  ConnKind kind = ConnKind::kControl;
  NodeId sender;
};

/// Writes the connection hello. False on socket error.
bool write_hello(TcpConn& conn, const Hello& hello);

/// Reads and validates the hello; nullopt on bad magic or socket error.
std::optional<Hello> read_hello(TcpConn& conn);

/// Writes one framed message (header + payload). False on socket error.
bool write_msg(TcpConn& conn, const Msg& m);

/// Reads one framed message. nullopt on EOF, socket error, or a corrupt
/// header.
MsgPtr read_msg(TcpConn& conn);

}  // namespace iov
