// Per-connection QoS measurement (paper §2.2, "Measurement of QoS
// metrics"): TCP throughput of a connection, bytes/messages lost to
// failures, and traffic inactivity, which doubles as the probe-free
// failure detector ("long consecutive periods of traffic inactivity,
// detected by throughput measurements").
//
// The meter keeps a ring of fixed-width time bins; rate() sums the bins
// inside the sliding window. Writers are the receiver/sender threads and
// the reader is the engine thread, so all operations take the internal
// mutex (measurement happens per message, not per byte, so contention is
// negligible at emulated rates).
#pragma once

#include <mutex>
#include <vector>

#include "common/types.h"

namespace iov {

class ThroughputMeter {
 public:
  /// `window` is the averaging horizon; `bins` its subdivisions.
  explicit ThroughputMeter(Duration window = seconds(2.0), int bins = 20);

  /// Records `bytes` transferred (one message) at time `now`.
  void record(std::size_t bytes, TimePoint now);

  /// Records bytes lost due to a failure (never counted in rate()).
  void record_loss(std::size_t bytes);

  /// Average throughput over the window ending at `now`, bytes/second.
  double rate(TimePoint now) const;

  /// Time since the last record(); Duration-max if nothing was recorded.
  Duration idle_for(TimePoint now) const;

  u64 total_bytes() const;
  u64 total_msgs() const;
  u64 lost_bytes() const;
  u64 lost_msgs() const;

 private:
  void roll_locked(TimePoint now) const;

  const Duration bin_width_;
  const int bin_count_;

  mutable std::mutex mu_;
  mutable std::vector<u64> bins_;
  mutable i64 head_bin_ = 0;  // absolute index of the newest bin
  u64 total_bytes_ = 0;
  u64 total_msgs_ = 0;
  u64 lost_bytes_ = 0;
  u64 lost_msgs_ = 0;
  TimePoint last_record_ = -1;
};

}  // namespace iov
