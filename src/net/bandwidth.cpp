#include "net/bandwidth.h"

#include <algorithm>

namespace iov {

void BandwidthEmulator::configure(const BandwidthSpec& spec) {
  total_.set_rate(spec.node_total);
  up_.set_rate(spec.node_up);
  down_.set_rate(spec.node_down);
}

TokenBucket* BandwidthEmulator::link_bucket(const NodeId& peer, bool up) {
  std::lock_guard<std::mutex> lock(links_mu_);
  auto& map = up ? link_up_ : link_down_;
  auto it = map.find(peer);
  if (it == map.end()) return nullptr;
  return it->second.get();
}

void BandwidthEmulator::set_link_up(const NodeId& peer, double bytes_per_sec) {
  std::lock_guard<std::mutex> lock(links_mu_);
  auto& bucket = link_up_[peer];
  if (!bucket) bucket = std::make_unique<TokenBucket>();
  bucket->set_rate(bytes_per_sec);
}

void BandwidthEmulator::set_link_down(const NodeId& peer,
                                      double bytes_per_sec) {
  std::lock_guard<std::mutex> lock(links_mu_);
  auto& bucket = link_down_[peer];
  if (!bucket) bucket = std::make_unique<TokenBucket>();
  bucket->set_rate(bytes_per_sec);
}

Duration BandwidthEmulator::acquire_send(const NodeId& peer,
                                         std::size_t bytes, TimePoint now) {
  Duration wait = total_.acquire(bytes, now);
  wait = std::max(wait, up_.acquire(bytes, now));
  if (TokenBucket* link = link_bucket(peer, /*up=*/true)) {
    wait = std::max(wait, link->acquire(bytes, now));
  }
  return wait;
}

Duration BandwidthEmulator::acquire_recv(const NodeId& peer,
                                         std::size_t bytes, TimePoint now) {
  Duration wait = total_.acquire(bytes, now);
  wait = std::max(wait, down_.acquire(bytes, now));
  if (TokenBucket* link = link_bucket(peer, /*up=*/false)) {
    wait = std::max(wait, link->acquire(bytes, now));
  }
  return wait;
}

}  // namespace iov
