#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <linux/errqueue.h>
#endif

#include <cerrno>
#include <cstring>

#include "common/logging.h"

namespace iov {

namespace {

sockaddr_in to_sockaddr(const NodeId& id) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(id.ip());
  addr.sin_port = htons(id.port());
  return addr;
}

NodeId from_sockaddr(const sockaddr_in& addr) {
  return NodeId(ntohl(addr.sin_addr.s_addr), ntohs(addr.sin_port));
}

bool set_nonblocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int desired =
      nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, desired) == 0;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void suppress_sigpipe() {
  static const bool done = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

std::optional<TcpConn> TcpConn::connect(const NodeId& dest, Duration timeout,
                                        int buffer_bytes) {
  suppress_sigpipe();
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return std::nullopt;
  if (buffer_bytes > 0) {
    // Before connect(): the handshake advertises the capped window.
    const int half = buffer_bytes / 2;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_SNDBUF, &half, sizeof(half));
    ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVBUF, &half, sizeof(half));
  }
  if (!iov::set_nonblocking(fd.get(), true)) return std::nullopt;

  const sockaddr_in addr = to_sockaddr(dest);
  const int rc =
      ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) return std::nullopt;
    pollfd pfd{fd.get(), POLLOUT, 0};
    const int timeout_ms =
        timeout < 0 ? -1 : static_cast<int>(timeout / kNanosPerMilli);
    if (::poll(&pfd, 1, timeout_ms) <= 0) return std::nullopt;
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      return std::nullopt;
    }
  }
  if (!iov::set_nonblocking(fd.get(), false)) return std::nullopt;
  set_nodelay(fd.get());
  return TcpConn(std::move(fd));
}

std::optional<TcpConn> TcpConn::connect_start(const NodeId& dest,
                                              int buffer_bytes) {
  suppress_sigpipe();
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return std::nullopt;
  if (buffer_bytes > 0) {
    const int half = buffer_bytes / 2;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_SNDBUF, &half, sizeof(half));
    ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVBUF, &half, sizeof(half));
  }
  if (!iov::set_nonblocking(fd.get(), true)) return std::nullopt;

  const sockaddr_in addr = to_sockaddr(dest);
  const int rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) return std::nullopt;
  return TcpConn(std::move(fd));
}

bool TcpConn::finish_connect() {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd_.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
    return false;
  }
  if (err != 0) {
    errno = err;
    return false;
  }
  set_nodelay(fd_.get());
  return true;
}

bool TcpConn::set_nonblocking(bool nonblocking) {
  return iov::set_nonblocking(fd_.get(), nonblocking);
}

bool TcpConn::write_all(const void* data, std::size_t n) {
  const u8* p = static_cast<const u8*>(data);
  while (n > 0) {
    const ssize_t written = ::send(fd_.get(), p, n, MSG_NOSIGNAL);
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (written == 0) return false;
    p += written;
    n -= static_cast<std::size_t>(written);
  }
  return true;
}

bool TcpConn::writev_all(struct iovec* iov, int iovcnt, u64* syscalls,
                         bool zerocopy, u64* zc_calls) {
#ifndef MSG_ZEROCOPY
  zerocopy = false;
#endif
  while (iovcnt > 0) {
    msghdr hdr{};
    hdr.msg_iov = iov;
    hdr.msg_iovlen = static_cast<std::size_t>(iovcnt);
    int flags = MSG_NOSIGNAL;
#ifdef MSG_ZEROCOPY
    if (zerocopy) flags |= MSG_ZEROCOPY;
#endif
    const ssize_t written = ::sendmsg(fd_.get(), &hdr, flags);
    if (written < 0) {
      if (errno == EINTR) continue;
      if (zerocopy && errno == ENOBUFS) {
        // Kernel optmem pressure: finish this write as a plain copy.
        zerocopy = false;
        continue;
      }
      return false;
    }
    if (syscalls != nullptr) ++*syscalls;
    if (zerocopy && zc_calls != nullptr) ++*zc_calls;
    if (written == 0) return false;
    // Advance past fully written iovecs, then trim the partial one.
    std::size_t left = static_cast<std::size_t>(written);
    while (iovcnt > 0 && left >= iov->iov_len) {
      left -= iov->iov_len;
      ++iov;
      --iovcnt;
    }
    if (iovcnt > 0 && left > 0) {
      iov->iov_base = static_cast<u8*>(iov->iov_base) + left;
      iov->iov_len -= left;
    }
  }
  return true;
}

long TcpConn::writev_some(const struct iovec* iov, int iovcnt,
                          u64* syscalls) {
  while (true) {
    msghdr hdr{};
    hdr.msg_iov = const_cast<struct iovec*>(iov);
    hdr.msg_iovlen = static_cast<std::size_t>(iovcnt);
    const ssize_t written = ::sendmsg(fd_.get(), &hdr, MSG_NOSIGNAL);
    if (written < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
      return -1;
    }
    if (syscalls != nullptr) ++*syscalls;
    return static_cast<long>(written);
  }
}

bool TcpConn::enable_zerocopy() {
#if defined(__linux__) && defined(SO_ZEROCOPY)
  int one = 1;
  return ::setsockopt(fd_.get(), SOL_SOCKET, SO_ZEROCOPY, &one,
                      sizeof(one)) == 0;
#else
  return false;
#endif
}

std::size_t TcpConn::reap_zerocopy(std::vector<ZcRange>& out) {
#if defined(__linux__) && defined(SO_ZEROCOPY)
  std::size_t reaped = 0;
  while (true) {
    // Completion notifications carry no data, only a cmsg on the error
    // queue; MSG_DONTWAIT keeps this a pure poll.
    u8 control[256];
    msghdr hdr{};
    hdr.msg_control = control;
    hdr.msg_controllen = sizeof(control);
    const ssize_t rc =
        ::recvmsg(fd_.get(), &hdr, MSG_ERRQUEUE | MSG_DONTWAIT);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return reaped;  // EAGAIN: queue drained (or socket gone)
    }
    for (cmsghdr* cm = CMSG_FIRSTHDR(&hdr); cm != nullptr;
         cm = CMSG_NXTHDR(&hdr, cm)) {
      // TCP delivers zerocopy errors as IP_RECVERR-style messages.
      const bool ip_err = (cm->cmsg_level == SOL_IP && cm->cmsg_type == IP_RECVERR) ||
                          (cm->cmsg_level == SOL_IPV6 && cm->cmsg_type == IPV6_RECVERR);
      if (!ip_err) continue;
      sock_extended_err err{};
      std::memcpy(&err, CMSG_DATA(cm), sizeof(err));
      if (err.ee_origin != SO_EE_ORIGIN_ZEROCOPY) continue;
      ZcRange range;
      range.lo = err.ee_info;
      range.hi = err.ee_data;
      range.copied = (err.ee_code & SO_EE_CODE_ZEROCOPY_COPIED) != 0;
      out.push_back(range);
      ++reaped;
    }
  }
#else
  (void)out;
  return 0;
#endif
}

bool TcpConn::read_all(void* data, std::size_t n) {
  u8* p = static_cast<u8*>(data);
  while (n > 0) {
    const ssize_t got = ::recv(fd_.get(), p, n, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;  // orderly EOF mid-frame
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

long TcpConn::read_some(void* data, std::size_t n) {
  while (true) {
    const ssize_t got = ::recv(fd_.get(), data, n, 0);
    if (got < 0 && errno == EINTR) continue;
    return got;
  }
}

void TcpConn::shutdown_write() { ::shutdown(fd_.get(), SHUT_WR); }

void TcpConn::shutdown_both() {
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
}

void TcpConn::close() {
  // Shut down both directions first so threads blocked in recv/send on
  // this socket wake immediately, then release the descriptor.
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
  fd_.reset();
}

std::optional<NodeId> TcpConn::peer_addr() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getpeername(fd_.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return std::nullopt;
  }
  return from_sockaddr(addr);
}

std::optional<NodeId> TcpConn::local_addr() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return std::nullopt;
  }
  return from_sockaddr(addr);
}

bool TcpConn::set_read_timeout(Duration timeout) {
  timeval tv{};
  if (timeout > 0) {
    tv.tv_sec = static_cast<time_t>(timeout / kNanosPerSec);
    tv.tv_usec = static_cast<suseconds_t>((timeout % kNanosPerSec) /
                                          kNanosPerMicro);
  }
  return ::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) ==
         0;
}

void TcpConn::set_buffer_sizes(int bytes) {
  if (bytes <= 0 || !fd_.valid()) return;
  // The kernel doubles the requested value for bookkeeping; halve so the
  // effective budget is what the caller asked for.
  const int half = bytes / 2;
  ::setsockopt(fd_.get(), SOL_SOCKET, SO_SNDBUF, &half, sizeof(half));
  ::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVBUF, &half, sizeof(half));
}

std::optional<TcpListener> TcpListener::listen(u16 port, bool loopback_only,
                                               int backlog, int buffer_bytes) {
  suppress_sigpipe();
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return std::nullopt;

  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (buffer_bytes > 0) {
    // Accepted sockets inherit these, bounding their negotiated windows.
    const int half = buffer_bytes / 2;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_SNDBUF, &half, sizeof(half));
    ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVBUF, &half, sizeof(half));
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(loopback_only ? INADDR_LOOPBACK : INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    IOV_LOG_ERROR("net") << "bind(" << port << ") failed: "
                         << std::strerror(errno);
    return std::nullopt;
  }
  if (::listen(fd.get(), backlog) != 0) return std::nullopt;
  if (!set_nonblocking(fd.get(), true)) return std::nullopt;

  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return std::nullopt;
  }

  TcpListener out;
  out.fd_ = std::move(fd);
  out.port_ = ntohs(addr.sin_port);
  return out;
}

std::optional<TcpConn> TcpListener::accept() {
  while (true) {
    const int client = ::accept(fd_.get(), nullptr, nullptr);
    if (client >= 0) {
      Fd cfd(client);
      set_nonblocking(client, false);
      set_nodelay(client);
      return TcpConn(std::move(cfd));
    }
    if (errno == EINTR) continue;
    return std::nullopt;  // EAGAIN (nothing pending) or a real error
  }
}

u64 raise_nofile_limit() {
  static const u64 cap = [] {
    rlimit lim{};
    if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return static_cast<u64>(0);
    if (lim.rlim_cur < lim.rlim_max) {
      lim.rlim_cur = lim.rlim_max;
      if (::setrlimit(RLIMIT_NOFILE, &lim) != 0) {
        IOV_LOG_WARN("net") << "setrlimit(RLIMIT_NOFILE) failed: "
                            << std::strerror(errno)
                            << "; keeping soft limit " << lim.rlim_cur;
        ::getrlimit(RLIMIT_NOFILE, &lim);
      }
    }
    return static_cast<u64>(lim.rlim_cur);
  }();
  return cap;
}

bool wait_readable(int fd, Duration timeout) {
  pollfd pfd{fd, POLLIN, 0};
  const int timeout_ms =
      timeout < 0 ? -1 : static_cast<int>(timeout / kNanosPerMilli);
  while (true) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0 && errno == EINTR) continue;
    return rc > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
  }
}

}  // namespace iov
