// RAII socket primitives. All higher layers (framing, engine threads,
// the observer) hold sockets only through these types, so descriptors can
// never leak, and all error paths reduce to "the call returned false /
// nullopt and errno says why".
//
// The paper's engine uses blocking send/recv in the per-connection
// receiver and sender threads, and a non-blocking poll on the publicized
// port in the engine thread; both styles are supported here.
#pragma once

#include <sys/uio.h>

#include <optional>
#include <utility>
#include <vector>

#include "common/node_id.h"
#include "common/types.h"

namespace iov {

/// Move-only owner of a file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset();

 private:
  int fd_ = -1;
};

/// Disables SIGPIPE delivery for the process; writing to a closed peer
/// then surfaces as EPIPE from send(), which the engine treats as a link
/// failure (paper §2.2, "abnormal signals caught by the engine, such as
/// the Broken Pipe signal"). Safe to call repeatedly.
void suppress_sigpipe();

/// A connected TCP stream.
class TcpConn {
 public:
  TcpConn() = default;
  explicit TcpConn(Fd fd) : fd_(std::move(fd)) {}

  /// Connects to `dest` with a timeout; nullopt on failure. The resulting
  /// socket is blocking with TCP_NODELAY set (the engine frames its own
  /// messages; Nagle only adds latency). `buffer_bytes` > 0 caps the
  /// kernel socket buffers *before* the handshake, so the negotiated TCP
  /// window is genuinely small (see set_buffer_sizes).
  static std::optional<TcpConn> connect(const NodeId& dest, Duration timeout,
                                        int buffer_bytes = 0);

  /// Begins a non-blocking connect to `dest` and returns immediately with
  /// the connect still in flight (the reactor path). The socket stays
  /// non-blocking. The caller waits for writability (EPOLLOUT), then
  /// calls finish_connect() to learn the outcome. nullopt only on
  /// immediate local failure (no route, fd exhaustion — errno preserved).
  static std::optional<TcpConn> connect_start(const NodeId& dest,
                                              int buffer_bytes = 0);

  /// Resolves a connect_start() once the socket reported writable:
  /// checks SO_ERROR and sets TCP_NODELAY. False means the connect
  /// failed (errno holds the reason).
  bool finish_connect();

  bool valid() const { return fd_.valid(); }
  int fd() const { return fd_.get(); }

  /// Switches the socket between blocking and non-blocking mode. The
  /// reactor drives sockets non-blocking; the legacy thread-per-link
  /// path keeps them blocking.
  bool set_nonblocking(bool nonblocking);

  /// Writes exactly `n` bytes; false on any error (errno preserved).
  /// Retries on EINTR. Never raises SIGPIPE.
  bool write_all(const void* data, std::size_t n);

  /// Scatter-gather write: sends every byte described by `iov[0..iovcnt)`
  /// in as few syscalls as the kernel allows (one, barring partial
  /// writes). The iovec array is clobbered while advancing over partial
  /// writes. `syscalls`, when non-null, is incremented once per sendmsg
  /// issued. False on any error; retries on EINTR; never raises SIGPIPE.
  ///
  /// `zerocopy`, when true, sends with MSG_ZEROCOPY (the caller must
  /// have called enable_zerocopy() and must keep every referenced byte
  /// alive until the matching completions are reaped — see
  /// reap_zerocopy). `zc_calls`, when non-null, is incremented once per
  /// sendmsg that actually carried the flag: that is exactly the number
  /// of completion ids the kernel assigned to this write. If the kernel
  /// refuses a zerocopy send with ENOBUFS (optmem pressure), the write
  /// falls back to plain sendmsg for the rest of this call — automatic,
  /// not an error.
  bool writev_all(struct iovec* iov, int iovcnt, u64* syscalls = nullptr,
                  bool zerocopy = false, u64* zc_calls = nullptr);

  /// One sendmsg over `iov[0..iovcnt)` on a non-blocking socket: returns
  /// the bytes accepted by the kernel (possibly a partial write), 0 when
  /// the socket would block (EAGAIN — arm EPOLLOUT and retry later), or
  /// -1 on a real error. Retries on EINTR; never raises SIGPIPE.
  /// `syscalls`, when non-null, counts the sendmsg issued.
  long writev_some(const struct iovec* iov, int iovcnt,
                   u64* syscalls = nullptr);

  /// Opts the socket into MSG_ZEROCOPY sends (SO_ZEROCOPY). False when
  /// the kernel or socket type does not support it; callers then simply
  /// keep using plain sends.
  bool enable_zerocopy();

  /// One MSG_ZEROCOPY completion range from the socket error queue:
  /// sends `lo..hi` (inclusive, in the order writev_all issued them,
  /// 32-bit wrapping) have left the kernel; the bytes they referenced
  /// may be reused. `copied` reports that the kernel fell back to
  /// copying (loopback always does) — correct either way, just not a
  /// true zero-copy transmit.
  struct ZcRange {
    u32 lo = 0;
    u32 hi = 0;
    bool copied = false;
  };

  /// Drains every pending zerocopy completion without blocking,
  /// appending to `out`. Returns the number of ranges appended (0 when
  /// the error queue is empty or on any error — reaping is best-effort;
  /// teardown bounds it with a deadline, not with error handling).
  std::size_t reap_zerocopy(std::vector<ZcRange>& out);

  /// Reads exactly `n` bytes; false on EOF or error.
  bool read_all(void* data, std::size_t n);

  /// Reads up to `n` bytes; returns bytes read, 0 on orderly EOF, -1 on
  /// error.
  long read_some(void* data, std::size_t n);

  /// Half-closes the write side, prompting EOF at the peer.
  void shutdown_write();

  /// Shuts down both directions without releasing the descriptor; any
  /// thread blocked in read/write on this socket wakes with an error.
  void shutdown_both();

  /// Closes the socket entirely; pending blocking operations on other
  /// threads fail promptly.
  void close();

  /// Remote address as reported by the kernel.
  std::optional<NodeId> peer_addr() const;

  /// Local address (useful when connecting from an ephemeral port).
  std::optional<NodeId> local_addr() const;

  /// Sets SO_RCVTIMEO so blocking reads fail with EAGAIN after `timeout`;
  /// pass 0 to restore fully blocking reads. Used by receiver threads to
  /// periodically check for shutdown.
  bool set_read_timeout(Duration timeout);

  /// Caps SO_SNDBUF/SO_RCVBUF at `bytes` each. Modern kernels auto-tune
  /// socket buffers into the megabytes, which hides TCP back-pressure
  /// for tens of seconds at emulated-KB/s rates; the engine optionally
  /// pins them small so the paper's back-pressure dynamics (Fig 6) play
  /// out on the paper's timescale.
  void set_buffer_sizes(int bytes);

 private:
  Fd fd_;
};

/// A listening TCP socket bound to 127.0.0.1 (virtualized nodes) or
/// 0.0.0.0.
class TcpListener {
 public:
  TcpListener() = default;

  /// Binds and listens. `port` 0 picks an ephemeral port ("otherwise, the
  /// engine chooses one of the available ports", §2.2). `loopback_only`
  /// restricts to 127.0.0.1. `buffer_bytes` > 0 caps the kernel socket
  /// buffers on the listening socket, which accepted connections inherit
  /// — necessary for the cap to actually bound the TCP window.
  static std::optional<TcpListener> listen(u16 port, bool loopback_only = true,
                                           int backlog = 128,
                                           int buffer_bytes = 0);

  bool valid() const { return fd_.valid(); }
  int fd() const { return fd_.get(); }

  /// The bound port (resolved when an ephemeral port was requested).
  u16 port() const { return port_; }

  /// Accepts one pending connection; nullopt if none is pending (the
  /// listener is non-blocking) or on error.
  std::optional<TcpConn> accept();

  void close() { fd_.reset(); }

 private:
  Fd fd_;
  u16 port_ = 0;
};

/// Waits until `fd` is readable or `timeout` elapses. Returns true when
/// readable. A negative timeout waits forever.
bool wait_readable(int fd, Duration timeout);

/// Raises RLIMIT_NOFILE's soft limit to the hard limit (a process hosting
/// a thousand nodes needs fds for every link, and the default soft cap is
/// often 1024). Returns the resulting soft limit, or 0 on failure. Safe
/// to call repeatedly; only the first call does the work.
u64 raise_nofile_limit();

}  // namespace iov
