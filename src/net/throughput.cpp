#include "net/throughput.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace iov {

ThroughputMeter::ThroughputMeter(Duration window, int bins)
    : bin_width_(std::max<Duration>(window / std::max(bins, 1), 1)),
      bin_count_(std::max(bins, 1)),
      bins_(static_cast<std::size_t>(bin_count_), 0) {}

void ThroughputMeter::roll_locked(TimePoint now) const {
  const i64 bin = now / bin_width_;
  if (bin <= head_bin_) return;
  const i64 advance = std::min<i64>(bin - head_bin_, bin_count_);
  for (i64 i = 0; i < advance; ++i) {
    head_bin_++;
    bins_[static_cast<std::size_t>(head_bin_ % bin_count_)] = 0;
  }
  head_bin_ = bin;
}

void ThroughputMeter::record(std::size_t bytes, TimePoint now) {
  std::lock_guard<std::mutex> lock(mu_);
  roll_locked(now);
  bins_[static_cast<std::size_t>(head_bin_ % bin_count_)] += bytes;
  total_bytes_ += bytes;
  total_msgs_ += 1;
  last_record_ = std::max(last_record_, now);
}

void ThroughputMeter::record_loss(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  lost_bytes_ += bytes;
  lost_msgs_ += 1;
}

double ThroughputMeter::rate(TimePoint now) const {
  std::lock_guard<std::mutex> lock(mu_);
  roll_locked(now);
  const u64 sum = std::accumulate(bins_.begin(), bins_.end(), u64{0});
  const double window_s = to_seconds(bin_width_ * bin_count_);
  return window_s > 0.0 ? static_cast<double>(sum) / window_s : 0.0;
}

Duration ThroughputMeter::idle_for(TimePoint now) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (last_record_ < 0) return std::numeric_limits<Duration>::max();
  return std::max<Duration>(0, now - last_record_);
}

u64 ThroughputMeter::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_;
}

u64 ThroughputMeter::total_msgs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_msgs_;
}

u64 ThroughputMeter::lost_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lost_bytes_;
}

u64 ThroughputMeter::lost_msgs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lost_msgs_;
}

}  // namespace iov
