// Bandwidth emulation at the three scopes the paper defines (§2.2):
//
//   (1) per-node total bandwidth — incoming plus outgoing combined;
//   (2) per-link bandwidth — a specific point-to-point virtual link;
//   (3) per-node incoming and outgoing bandwidth — asymmetric nodes,
//       e.g. DSL/cable-modem style last miles.
//
// Sender threads call acquire_send() and receiver threads call
// acquire_recv() for every message; the returned Duration is slept before
// the bytes touch the socket. All scopes compose: a send must clear the
// per-link bucket, the node's uplink bucket, and the node's total bucket,
// and waits for the most constrained one.
//
// All limits are adjustable at runtime from any thread (the observer
// changes them mid-experiment to move bottlenecks around, as in Fig 6/7).
#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/node_id.h"
#include "net/token_bucket.h"

namespace iov {

/// Static limits a node can be configured with at start-up; 0 = unlimited.
/// Rates are in bytes per second.
struct BandwidthSpec {
  double node_total = 0.0;
  double node_up = 0.0;
  double node_down = 0.0;
};

class BandwidthEmulator {
 public:
  BandwidthEmulator() = default;
  explicit BandwidthEmulator(const BandwidthSpec& spec) { configure(spec); }

  /// Applies node-scope limits.
  void configure(const BandwidthSpec& spec);

  void set_node_total(double bytes_per_sec) { total_.set_rate(bytes_per_sec); }
  void set_node_up(double bytes_per_sec) { up_.set_rate(bytes_per_sec); }
  void set_node_down(double bytes_per_sec) { down_.set_rate(bytes_per_sec); }

  /// Sets the limit of the virtual link to `peer` in the given direction.
  /// 0 removes the limit.
  void set_link_up(const NodeId& peer, double bytes_per_sec);
  void set_link_down(const NodeId& peer, double bytes_per_sec);

  double node_total() const { return total_.rate(); }
  double node_up() const { return up_.rate(); }
  double node_down() const { return down_.rate(); }

  /// Wait required before `bytes` may be sent to `peer` at time `now`.
  Duration acquire_send(const NodeId& peer, std::size_t bytes, TimePoint now);

  /// Wait required before `bytes` may be accepted from `peer` at `now`.
  Duration acquire_recv(const NodeId& peer, std::size_t bytes, TimePoint now);

 private:
  TokenBucket* link_bucket(const NodeId& peer, bool up);

  TokenBucket total_;
  TokenBucket up_;
  TokenBucket down_;

  std::mutex links_mu_;
  // Buckets are held by unique_ptr so references handed to sender threads
  // stay valid while the map rehashes.
  std::unordered_map<NodeId, std::unique_ptr<TokenBucket>> link_up_;
  std::unordered_map<NodeId, std::unique_ptr<TokenBucket>> link_down_;
};

}  // namespace iov
