// Shared epoll reactor — a small fixed pool of event-loop workers that
// drives every PeerLink socket in the process (DESIGN.md §9).
//
// The paper's engine spends two OS threads per persistent connection
// (receiver + sender), so hosting N virtual nodes costs O(N·peers)
// threads — fine at the paper's 2–12 nodes, a wall at production scale.
// The reactor replaces those thread bodies with per-link state machines
// multiplexed over a handful of epoll loops, so total OS threads are
// `reactor workers + one engine thread per node`, independent of the
// node×peer count.
//
// Threading model:
//   * Each Worker owns one epoll instance, one wake eventfd, a FIFO task
//     queue, and a timer heap, all serviced by a single thread.
//   * A handler (fd registration, timers, state) belongs to exactly ONE
//     worker; every callback for it runs on that worker's thread, so
//     handler state needs no locking.
//   * Other threads talk to a worker only through submit(), which is the
//     one thread-safe entry point (mutex-guarded queue + eventfd wake).
//     Tasks run FIFO: a task submitted before a handler's teardown task
//     can never observe the handler after teardown.
//   * Within one loop iteration the order is: dispatch epoll events,
//     run submitted tasks, fire due timers. Handlers are looked up in
//     the registration map per event, so a handler deregistered by an
//     earlier callback in the same batch is skipped, never dangled.
//
// Scheduling lag (time between a task's submission — or a timer's due
// point — and the moment it runs) is observed into the per-handler
// histogram supplied at schedule time; the engine registers
// iov_reactor_loop_lag_seconds there, so a node's report shows the lag
// *its* links experienced even though the pool is process-shared.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace iov::reactor {

/// Receives readiness callbacks for one registered fd. All calls arrive
/// on the owning worker's thread.
class EventHandler {
 public:
  virtual ~EventHandler() = default;
  /// `events` is the epoll event mask (EPOLLIN/EPOLLOUT/EPOLLERR/...).
  virtual void on_event(u32 events) = 0;
};

class Worker {
 public:
  Worker();
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  void start();
  /// Asks the loop to exit and joins the thread. Idempotent.
  void stop_and_join();

  /// Runs `fn` on the worker thread, FIFO with other tasks. Thread safe;
  /// the only cross-thread entry point. `lag`, when non-null, receives
  /// the submit→run delay and must outlive the task.
  void submit(std::function<void()> fn, obs::Histogram* lag = nullptr);

  // --- Worker-thread-only API (call from handler callbacks or tasks) -------

  /// Registers `fd` with the given epoll interest mask.
  bool add_fd(int fd, u32 events, EventHandler* handler);
  /// Changes the interest mask of a registered fd.
  bool mod_fd(int fd, u32 events);
  /// Removes a registered fd; no callbacks for it run afterwards.
  void del_fd(int fd);

  /// Runs `fn` on this worker after `delay`. `owner` keys cancellation;
  /// `lag`, when non-null, receives the due→run delay.
  void schedule_after(Duration delay, void* owner, std::function<void()> fn,
                      obs::Histogram* lag = nullptr);
  /// Drops every pending timer scheduled under `owner`.
  void cancel_timers(void* owner);

  /// True when the calling thread is this worker's loop thread.
  bool on_worker_thread() const;

 private:
  struct Task {
    std::function<void()> fn;
    TimePoint submitted = 0;
    obs::Histogram* lag = nullptr;
  };
  struct Timer {
    TimePoint due = 0;
    u64 seq = 0;
    void* owner = nullptr;
    std::function<void()> fn;
    obs::Histogram* lag = nullptr;
    bool operator>(const Timer& o) const {
      return due != o.due ? due > o.due : seq > o.seq;
    }
  };

  void loop();
  void wake();
  Duration next_timeout() const;
  void run_tasks();
  void fire_timers();

  Fd epoll_fd_;
  Fd wake_fd_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};

  std::mutex task_mu_;
  std::vector<Task> tasks_;       // guarded by task_mu_
  std::vector<Task> running_;     // worker-thread scratch

  // Worker-thread-only state.
  std::unordered_map<int, EventHandler*> handlers_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  u64 timer_seq_ = 0;
};

/// The fixed worker pool. One process-shared instance drives every
/// reactor-mode engine (Reactor::shared()); tests may instantiate their
/// own.
class Reactor {
 public:
  /// Starts `threads` workers (clamped to ≥ 1).
  explicit Reactor(int threads);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Round-robin worker assignment; a link keeps its worker for life.
  Worker& pick();

  int threads() const { return static_cast<int>(workers_.size()); }

  /// The worker count used when the caller asks for "auto" (< 0):
  /// min(4, hardware_concurrency), at least 1.
  static int auto_threads();

  /// The process-wide shared pool, created on first use. The first call
  /// fixes the pool size: `threads_hint` < 0 means auto_threads(); later
  /// calls with a different hint keep the existing pool (logged once).
  static Reactor& shared(int threads_hint);

 private:
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<u64> next_{0};
};

}  // namespace iov::reactor
