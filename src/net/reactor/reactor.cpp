#include "net/reactor/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/clock.h"
#include "common/logging.h"

namespace iov::reactor {
namespace {

constexpr int kMaxEvents = 128;
// Upper bound on one epoll_wait when timers are idle; keeps the loop
// responsive to stop() even if a wake write were ever lost.
constexpr Duration kIdleTimeout = millis(500);

}  // namespace

Worker::Worker() = default;

Worker::~Worker() { stop_and_join(); }

void Worker::start() {
  if (started_.exchange(true)) return;
  epoll_fd_ = Fd(epoll_create1(EPOLL_CLOEXEC));
  wake_fd_ = Fd(eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!epoll_fd_.valid() || !wake_fd_.valid()) {
    IOV_LOG_ERROR("reactor") << "worker init failed: " << std::strerror(errno);
    return;
  }
  struct epoll_event ev {};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_.get();
  epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &ev);
  thread_ = std::thread([this] { loop(); });
}

void Worker::stop_and_join() {
  if (!started_.load() || stop_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  wake();
  if (thread_.joinable()) thread_.join();
}

void Worker::submit(std::function<void()> fn, obs::Histogram* lag) {
  {
    std::lock_guard<std::mutex> lock(task_mu_);
    tasks_.push_back(Task{std::move(fn), RealClock::instance().now(), lag});
  }
  wake();
}

void Worker::wake() {
  const u64 one = 1;
  [[maybe_unused]] ssize_t n = write(wake_fd_.get(), &one, sizeof(one));
}

bool Worker::add_fd(int fd, u32 events, EventHandler* handler) {
  struct epoll_event ev {};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) return false;
  handlers_[fd] = handler;
  return true;
}

bool Worker::mod_fd(int fd, u32 events) {
  struct epoll_event ev {};
  ev.events = events;
  ev.data.fd = fd;
  return epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) == 0;
}

void Worker::del_fd(int fd) {
  epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void Worker::schedule_after(Duration delay, void* owner,
                            std::function<void()> fn, obs::Histogram* lag) {
  Timer t;
  t.due = RealClock::instance().now() + std::max<Duration>(delay, 0);
  t.seq = ++timer_seq_;
  t.owner = owner;
  t.fn = std::move(fn);
  t.lag = lag;
  timers_.push(std::move(t));
}

void Worker::cancel_timers(void* owner) {
  if (timers_.empty()) return;
  // priority_queue has no erase; rebuild without `owner`'s entries. Timer
  // populations are small (one pacing/connect timer per parked link).
  std::vector<Timer> keep;
  keep.reserve(timers_.size());
  while (!timers_.empty()) {
    // NOLINTNEXTLINE(cppcoreguidelines-pro-type-const-cast): pop-by-move
    Timer t = std::move(const_cast<Timer&>(timers_.top()));
    timers_.pop();
    if (t.owner != owner) keep.push_back(std::move(t));
  }
  for (auto& t : keep) timers_.push(std::move(t));
}

bool Worker::on_worker_thread() const {
  return std::this_thread::get_id() == thread_.get_id();
}

Duration Worker::next_timeout() const {
  if (timers_.empty()) return kIdleTimeout;
  const Duration until = timers_.top().due - RealClock::instance().now();
  return std::clamp<Duration>(until, 0, kIdleTimeout);
}

void Worker::run_tasks() {
  running_.clear();
  {
    std::lock_guard<std::mutex> lock(task_mu_);
    running_.swap(tasks_);
  }
  for (auto& task : running_) {
    if (task.lag != nullptr) {
      task.lag->observe_duration(RealClock::instance().now() - task.submitted);
    }
    task.fn();
  }
  running_.clear();
}

void Worker::fire_timers() {
  const TimePoint now = RealClock::instance().now();
  while (!timers_.empty() && timers_.top().due <= now) {
    // NOLINTNEXTLINE(cppcoreguidelines-pro-type-const-cast): pop-by-move
    Timer t = std::move(const_cast<Timer&>(timers_.top()));
    timers_.pop();
    if (t.lag != nullptr) t.lag->observe_duration(now - t.due);
    t.fn();
  }
}

void Worker::loop() {
  struct epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    const Duration timeout = next_timeout();
    // epoll_pwait2 takes a nanosecond deadline, so pacing timers fire on
    // time instead of rounded up to the next millisecond.
    struct timespec ts;
    ts.tv_sec = timeout / kNanosPerSec;
    ts.tv_nsec = timeout % kNanosPerSec;
    int n = epoll_pwait2(epoll_fd_.get(), events, kMaxEvents, &ts, nullptr);
    if (n < 0 && errno == ENOSYS) {
      n = epoll_wait(epoll_fd_.get(), events, kMaxEvents,
                     static_cast<int>(timeout / kNanosPerMilli) + 1);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      IOV_LOG_ERROR("reactor") << "epoll_wait: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_.get()) {
        u64 drained;
        while (read(wake_fd_.get(), &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      // Look the handler up per event: an earlier callback in this batch
      // may have deregistered it.
      auto it = handlers_.find(fd);
      if (it != handlers_.end()) it->second->on_event(events[i].events);
    }
    run_tasks();
    fire_timers();
  }
  // Drain any final tasks so teardown work submitted just before stop
  // (e.g. link detach) still runs and nobody waits forever on it.
  run_tasks();
}

Reactor::Reactor(int threads) {
  const int n = std::max(threads, 1);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    workers_.back()->start();
  }
}

Reactor::~Reactor() {
  for (auto& w : workers_) w->stop_and_join();
}

Worker& Reactor::pick() {
  const u64 i = next_.fetch_add(1, std::memory_order_relaxed);
  return *workers_[i % workers_.size()];
}

int Reactor::auto_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, std::min(4, static_cast<int>(hw)));
}

Reactor& Reactor::shared(int threads_hint) {
  // First caller fixes the pool size; the pool lives until after main
  // (function-local static), so links can always reach their worker.
  static Reactor* instance = nullptr;
  static std::once_flag once;
  static int fixed = 0;
  std::call_once(once, [&] {
    fixed = threads_hint < 0 ? auto_threads() : std::max(threads_hint, 1);
    static Reactor pool(fixed);
    instance = &pool;
    IOV_LOG_INFO("reactor") << "shared epoll pool started: " << fixed
                            << " worker thread(s)";
  });
  const int want = threads_hint < 0 ? auto_threads() : std::max(threads_hint, 1);
  if (want != fixed) {
    static std::once_flag warn_once;
    std::call_once(warn_once, [&] {
      IOV_LOG_WARN("reactor")
          << "reactor_threads=" << want << " requested but shared pool "
          << "already sized at " << fixed << "; keeping existing pool";
    });
  }
  return *instance;
}

}  // namespace iov::reactor
