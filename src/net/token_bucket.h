// Token-bucket rate limiter — the mechanism behind the paper's bandwidth
// emulation (§2.2): "we have wrapped the socket send and recv functions
// to include multiple timers in order to precisely control the bandwidth
// used per interval".
//
// A bucket accrues `rate` tokens (bytes) per second up to `burst` bytes.
// Callers consume tokens for each message and are told how long to sleep
// before the bytes may pass. Rates are runtime-adjustable: the observer
// can "produce or relieve artificial bottlenecks on the fly".
#pragma once

#include <mutex>

#include "common/types.h"

namespace iov {

class TokenBucket {
 public:
  /// `rate_bytes_per_sec` of 0 means unlimited. `burst_bytes` of 0 derives
  /// a default burst of max(one typical message, rate/8).
  explicit TokenBucket(double rate_bytes_per_sec = 0.0, double burst_bytes = 0.0);

  /// Changes the rate; tokens already accrued are retained (clamped to the
  /// new burst). Thread safe.
  void set_rate(double rate_bytes_per_sec, double burst_bytes = 0.0);

  /// Current rate limit in bytes/s; 0 when unlimited.
  double rate() const;

  bool limited() const { return rate() > 0.0; }

  /// Consumes `bytes` tokens at time `now` and returns how long the caller
  /// must wait before the bytes are allowed on the wire (0 when tokens were
  /// available). The debt model allows the balance to go negative so that
  /// a large message simply delays subsequent ones — this matches the
  /// paper's per-interval pacing and keeps sustained throughput exact.
  Duration acquire(std::size_t bytes, TimePoint now);

  /// Non-consuming peek: the wait a hypothetical acquire would return.
  Duration would_wait(std::size_t bytes, TimePoint now) const;

 private:
  void refill_locked(TimePoint now) const;

  mutable std::mutex mu_;
  double rate_ = 0.0;       // bytes per second; 0 = unlimited
  double burst_ = 0.0;      // max accumulated tokens, bytes
  mutable double tokens_ = 0.0;  // may be negative (debt)
  mutable TimePoint last_ = 0;
};

}  // namespace iov
