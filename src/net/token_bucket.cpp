#include "net/token_bucket.h"

#include <algorithm>

namespace iov {

namespace {
double default_burst(double rate) {
  // One eighth of a second of traffic, at least one 8 KB message.
  return std::max(8192.0, rate / 8.0);
}
}  // namespace

TokenBucket::TokenBucket(double rate_bytes_per_sec, double burst_bytes) {
  set_rate(rate_bytes_per_sec, burst_bytes);
}

void TokenBucket::set_rate(double rate_bytes_per_sec, double burst_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool was_unlimited = rate_ == 0.0;
  rate_ = rate_bytes_per_sec > 0.0 ? rate_bytes_per_sec : 0.0;
  burst_ = burst_bytes > 0.0 ? burst_bytes : default_burst(rate_);
  if (was_unlimited) {
    // Entering limited mode (including construction) starts with a full
    // bucket: traffic is paced from the first message onward with no
    // spurious initial delay. Limited-to-limited changes retain the
    // balance so runtime adjustments grant no free burst.
    tokens_ = burst_;
  }
  tokens_ = std::min(tokens_, burst_);
  if (rate_ == 0.0) tokens_ = 0.0;
}

double TokenBucket::rate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rate_;
}

void TokenBucket::refill_locked(TimePoint now) const {
  if (now <= last_) return;
  const double elapsed = to_seconds(now - last_);
  tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
  last_ = now;
}

Duration TokenBucket::acquire(std::size_t bytes, TimePoint now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (rate_ == 0.0) return 0;
  refill_locked(now);
  tokens_ -= static_cast<double>(bytes);
  if (tokens_ >= 0.0) return 0;
  return static_cast<Duration>(-tokens_ / rate_ *
                               static_cast<double>(kNanosPerSec));
}

Duration TokenBucket::would_wait(std::size_t bytes, TimePoint now) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (rate_ == 0.0) return 0;
  refill_locked(now);
  const double balance = tokens_ - static_cast<double>(bytes);
  if (balance >= 0.0) return 0;
  return static_cast<Duration>(-balance / rate_ *
                               static_cast<double>(kNanosPerSec));
}

}  // namespace iov
