#include "net/framing.h"

#include <cstring>

#include "message/codec.h"

namespace iov {

namespace {
constexpr u32 kMagic = 0x494f5631;  // "IOV1"
constexpr std::size_t kHelloSize = 16;
}  // namespace

bool write_hello(TcpConn& conn, const Hello& hello) {
  u8 bytes[kHelloSize];
  codec::write_u32(bytes, kMagic);
  codec::write_u32(bytes + 4, static_cast<u32>(hello.kind));
  codec::write_u32(bytes + 8, hello.sender.ip());
  codec::write_u32(bytes + 12, hello.sender.port());
  return conn.write_all(bytes, sizeof(bytes));
}

std::optional<Hello> read_hello(TcpConn& conn) {
  u8 bytes[kHelloSize];
  if (!conn.read_all(bytes, sizeof(bytes))) return std::nullopt;
  if (codec::read_u32(bytes) != kMagic) return std::nullopt;
  const u32 kind = codec::read_u32(bytes + 4);
  if (kind != static_cast<u32>(ConnKind::kPersistent) &&
      kind != static_cast<u32>(ConnKind::kControl)) {
    return std::nullopt;
  }
  const u32 ip = codec::read_u32(bytes + 8);
  const u32 port = codec::read_u32(bytes + 12);
  if (port > 0xffff) return std::nullopt;
  Hello hello;
  hello.kind = static_cast<ConnKind>(kind);
  hello.sender = NodeId(ip, static_cast<u16>(port));
  return hello;
}

bool write_msg(TcpConn& conn, const Msg& m) {
  const auto header = codec::encode_header(m);
  if (!conn.write_all(header.data(), header.size())) return false;
  if (m.payload_size() == 0) return true;
  return conn.write_all(m.payload()->data(), m.payload_size());
}

MsgPtr read_msg(TcpConn& conn) {
  u8 header_bytes[Msg::kHeaderSize];
  if (!conn.read_all(header_bytes, sizeof(header_bytes))) return nullptr;
  const auto header = codec::decode_header(header_bytes);
  if (!header) return nullptr;

  BufferPtr payload = Buffer::empty_buffer();
  if (header->payload_size > 0) {
    std::vector<u8> bytes(header->payload_size);
    if (!conn.read_all(bytes.data(), bytes.size())) return nullptr;
    payload = Buffer::wrap(std::move(bytes));
  }
  return std::make_shared<Msg>(header->type, header->origin, header->app,
                               header->seq, std::move(payload));
}

}  // namespace iov
