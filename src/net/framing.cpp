#include "net/framing.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "message/codec.h"

namespace iov {

namespace {
constexpr u32 kMagic = 0x494f5631;  // "IOV1"
}  // namespace

std::array<u8, kHelloBytes> encode_hello(const Hello& hello) {
  std::array<u8, kHelloBytes> bytes;
  codec::write_u32(bytes.data(), kMagic);
  codec::write_u32(bytes.data() + 4, static_cast<u32>(hello.kind));
  codec::write_u32(bytes.data() + 8, hello.sender.ip());
  codec::write_u32(bytes.data() + 12, hello.sender.port());
  return bytes;
}

bool write_hello(TcpConn& conn, const Hello& hello) {
  const auto bytes = encode_hello(hello);
  return conn.write_all(bytes.data(), bytes.size());
}

std::optional<Hello> read_hello(TcpConn& conn) {
  u8 bytes[kHelloBytes];
  if (!conn.read_all(bytes, sizeof(bytes))) return std::nullopt;
  if (codec::read_u32(bytes) != kMagic) return std::nullopt;
  const u32 kind = codec::read_u32(bytes + 4);
  if (kind != static_cast<u32>(ConnKind::kPersistent) &&
      kind != static_cast<u32>(ConnKind::kControl)) {
    return std::nullopt;
  }
  const u32 ip = codec::read_u32(bytes + 8);
  const u32 port = codec::read_u32(bytes + 12);
  if (port > 0xffff) return std::nullopt;
  Hello hello;
  hello.kind = static_cast<ConnKind>(kind);
  hello.sender = NodeId(ip, static_cast<u16>(port));
  return hello;
}

bool write_msg(TcpConn& conn, const Msg& m) {
  auto header = codec::encode_header(m);
  iovec iov[2];
  iov[0] = {header.data(), header.size()};
  int iovcnt = 1;
  if (m.payload_size() > 0) {
    iov[1] = {const_cast<u8*>(m.payload()->data()), m.payload_size()};
    iovcnt = 2;
  }
  return conn.writev_all(iov, iovcnt);
}

bool write_batch(TcpConn& conn, const MsgPtr* msgs, std::size_t n,
                 u64* syscalls) {
  std::array<codec::HeaderBytes, kMaxWireBatch> headers;
  std::array<iovec, 2 * kMaxWireBatch> iov;
  for (std::size_t done = 0; done < n;) {
    const std::size_t take = std::min(n - done, kMaxWireBatch);
    int iovcnt = 0;
    for (std::size_t i = 0; i < take; ++i) {
      const Msg& m = *msgs[done + i];
      headers[i] = codec::encode_header(m);
      iov[iovcnt++] = {headers[i].data(), headers[i].size()};
      if (m.payload_size() > 0) {
        iov[iovcnt++] = {const_cast<u8*>(m.payload()->data()),
                         m.payload_size()};
      }
    }
    if (!conn.writev_all(iov.data(), iovcnt, syscalls)) return false;
    done += take;
  }
  return true;
}

bool write_batch_zerocopy(TcpConn& conn, const MsgPtr* msgs, std::size_t n,
                          std::vector<codec::HeaderBytes>& headers,
                          u64* syscalls, u64* zc_calls) {
  headers.resize(n);
  std::array<iovec, 2 * kMaxWireBatch> iov;
  for (std::size_t done = 0; done < n;) {
    const std::size_t take = std::min(n - done, kMaxWireBatch);
    int iovcnt = 0;
    for (std::size_t i = 0; i < take; ++i) {
      const Msg& m = *msgs[done + i];
      headers[done + i] = codec::encode_header(m);
      iov[iovcnt++] = {headers[done + i].data(), headers[done + i].size()};
      if (m.payload_size() > 0) {
        iov[iovcnt++] = {const_cast<u8*>(m.payload()->data()),
                         m.payload_size()};
      }
    }
    if (!conn.writev_all(iov.data(), iovcnt, syscalls, /*zerocopy=*/true,
                         zc_calls)) {
      return false;
    }
    done += take;
  }
  return true;
}

MsgPtr read_msg(TcpConn& conn) {
  u8 header_bytes[Msg::kHeaderSize];
  if (!conn.read_all(header_bytes, sizeof(header_bytes))) return nullptr;
  const auto header = codec::decode_header(header_bytes);
  if (!header) return nullptr;

  BufferPtr payload = Buffer::empty_buffer();
  if (header->payload_size > 0) {
    std::vector<u8> bytes(header->payload_size);
    if (!conn.read_all(bytes.data(), bytes.size())) return nullptr;
    payload = Buffer::wrap(std::move(bytes));
  }
  return std::make_shared<Msg>(header->type, header->origin, header->app,
                               header->seq, std::move(payload));
}

FrameReader::FrameReader(TcpConn& conn, std::size_t chunk_bytes,
                         SlabPool* pool)
    : conn_(conn),
      chunk_bytes_(std::max<std::size_t>(chunk_bytes, 2 * Msg::kHeaderSize)),
      pool_(pool) {}

bool FrameReader::refill(std::size_t cap) {
  const std::size_t leftover = available();
  if (!chunk_) {
    chunk_ = std::make_shared<std::vector<u8>>(chunk_bytes_);
  } else if (pos_ == end_ && !chunk_sliced_) {
    // Fully drained and no payload slice was ever minted from this chunk:
    // nothing outside this thread has seen the bytes, so rewind and reuse.
    // A sliced chunk is never rewound — even after every slice is
    // released, a use_count()==1 observation would not synchronize with
    // the consumer's reads (no acquire edge from the refcount decrement),
    // so writing over the bytes would be a data race.
    pos_ = end_ = 0;
  } else if (pos_ == end_ || end_ == chunk_->size()) {
    // Sliced and drained, or tail full: outstanding slices may still
    // reference the old chunk, so start a fresh one and carry any partial
    // frame over; the old chunk lives on until its last slice is
    // released. (Appending past end_ into a sliced chunk stays safe —
    // slices only ever cover bytes below pos_.)
    auto fresh = std::make_shared<std::vector<u8>>(chunk_bytes_);
    std::memcpy(fresh->data(), chunk_->data() + pos_, leftover);
    chunk_ = std::move(fresh);
    chunk_sliced_ = false;
    pos_ = 0;
    end_ = leftover;
  }
  const long n = conn_.read_some(chunk_->data() + end_,
                                 std::min(chunk_->size() - end_, cap));
  ++syscalls_;
  if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
    would_block_ = true;  // non-blocking socket drained, not dead
    return false;
  }
  if (n <= 0) return false;  // EOF or socket error
  end_ += static_cast<std::size_t>(n);
  return true;
}

MsgPtr FrameReader::read_large(const codec::Header& header) {
  // Frame bigger than the chunk: recv the payload directly into a
  // payload-sized destination — a recycled pool slab when available
  // (zero per-message payload allocation, no zero-fill), else one
  // dedicated vector. Any payload bytes the chunk already holds are
  // seeded with one memcpy; in the steady large-frame state the
  // expect_large_ exact-header reads keep that seed empty, so the
  // payload is never copied at all.
  LargePending p;
  p.header = header;
  const std::size_t size = header.payload_size;
  u8* dst = nullptr;
  if (pool_ != nullptr) {
    p.slab = pool_->acquire(size);
    dst = p.slab->data();
  } else {
    p.bytes.resize(size);
    dst = p.bytes.data();
  }
  const std::size_t have = std::min(available(), size);
  if (have > 0) {
    std::memcpy(dst, chunk_->data() + pos_, have);
    pos_ += have;
  }
  p.got = have;
  large_.emplace(std::move(p));
  return resume_large();
}

MsgPtr FrameReader::resume_large() {
  LargePending& p = *large_;
  const std::size_t size = p.header.payload_size;
  u8* dst = p.slab ? p.slab->data() : p.bytes.data();
  while (p.got < size) {
    const long n = conn_.read_some(dst + p.got, size - p.got);
    ++syscalls_;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Mid-payload on a non-blocking socket: keep the destination and
      // byte count; the next next() call picks up exactly here.
      would_block_ = true;
      return nullptr;
    }
    if (n <= 0) {
      failed_ = true;
      large_.reset();
      return nullptr;
    }
    p.got += static_cast<std::size_t>(n);
  }
  ++msgs_;
  expect_large_ = true;
  BufferPtr payload = p.slab ? Buffer::slice(p.slab, p.slab->data(), size)
                             : Buffer::wrap(std::move(p.bytes));
  auto msg = std::make_shared<Msg>(p.header.type, p.header.origin,
                                   p.header.app, p.header.seq,
                                   std::move(payload));
  large_.reset();
  return msg;
}

bool FrameReader::buffered() const {
  if (failed_) return true;  // next() reports the error without blocking
  if (available() < Msg::kHeaderSize) return false;
  const auto header = codec::decode_header(chunk_->data() + pos_);
  if (!header) return true;  // corrupt: next() fails without a syscall
  const std::size_t total = Msg::kHeaderSize + header->payload_size;
  if (total > chunk_bytes_) return false;  // large-frame path needs reads
  return available() >= total;
}

MsgPtr FrameReader::next() {
  would_block_ = false;
  if (large_ && !failed_) return resume_large();
  while (!failed_) {
    if (available() < Msg::kHeaderSize) {
      // After a large frame, read the next header *exactly*: a greedy
      // chunk fill would slurp the following (likely large) payload
      // into the chunk, forcing read_large to memcpy it back out. If
      // the guess is wrong the next frame is small and costs one extra
      // bounded recv before normal bulk filling resumes.
      if (!refill(expect_large_ ? Msg::kHeaderSize - available()
                                : static_cast<std::size_t>(-1))) {
        if (would_block_) return nullptr;  // retry when readable
        break;
      }
      continue;
    }
    const auto header = codec::decode_header(chunk_->data() + pos_);
    if (!header) {
      failed_ = corrupt_ = true;
      break;
    }
    const std::size_t total = Msg::kHeaderSize + header->payload_size;
    if (total > chunk_bytes_) {
      pos_ += Msg::kHeaderSize;
      return read_large(*header);
    }
    expect_large_ = false;
    if (available() < total) {
      if (!refill()) {
        if (would_block_) return nullptr;  // retry when readable
        break;
      }
      continue;
    }
    BufferPtr payload = Buffer::empty_buffer();
    if (header->payload_size > 0) {
      payload = Buffer::slice(chunk_, chunk_->data() + pos_ + Msg::kHeaderSize,
                              header->payload_size);
      chunk_sliced_ = true;
    }
    pos_ += total;
    ++msgs_;
    return std::make_shared<Msg>(header->type, header->origin, header->app,
                                 header->seq, std::move(payload));
  }
  failed_ = true;
  return nullptr;
}

}  // namespace iov
