// The registry of metric names — the single source of truth for the
// engine-wide observability layer. Every metric registered anywhere in
// the codebase must take its name from this header, and every name here
// must be documented in docs/METRICS.md (tools/check_metrics_docs.sh,
// run as the `check_metrics_docs` ctest, enforces both directions).
//
// Naming convention (Prometheus style): `iov_<subsystem>_<what>[_unit]`,
// counters end in `_total`, durations are histograms in `_seconds`.
#pragma once

namespace iov::obs::names {

// --- Engine: the message switch (per-node registry) -----------------------
inline constexpr char kSwitchLatencySeconds[] = "iov_switch_latency_seconds";
inline constexpr char kSwitchProcessSeconds[] = "iov_switch_process_seconds";
inline constexpr char kSwitchMessagesTotal[] = "iov_switch_messages_total";
inline constexpr char kSwitchRoundsTotal[] = "iov_switch_rounds_total";
inline constexpr char kEngineControlMessagesTotal[] =
    "iov_engine_control_messages_total";
inline constexpr char kEngineTimersFiredTotal[] =
    "iov_engine_timers_fired_total";
inline constexpr char kEngineReportsSentTotal[] =
    "iov_engine_reports_sent_total";
inline constexpr char kEngineTracesTotal[] = "iov_engine_traces_total";
inline constexpr char kEngineLinkClosesTotal[] =
    "iov_engine_link_closes_total";
inline constexpr char kEngineLinkFailuresTotal[] =
    "iov_engine_link_failures_total";
inline constexpr char kEngineThreads[] = "iov_engine_threads";
inline constexpr char kEngineOpenFds[] = "iov_engine_open_fds";

// --- Shared epoll reactor (per-node registry; pool is process-shared) -----
inline constexpr char kReactorLoopLagSeconds[] =
    "iov_reactor_loop_lag_seconds";

// --- Per-link data plane (labels: peer, dir=up|down) ----------------------
inline constexpr char kLinkBytesTotal[] = "iov_link_bytes_total";
inline constexpr char kLinkMessagesTotal[] = "iov_link_messages_total";
inline constexpr char kLinkLostBytesTotal[] = "iov_link_lost_bytes_total";
inline constexpr char kLinkLostMessagesTotal[] =
    "iov_link_lost_messages_total";
inline constexpr char kLinkQueueDepth[] = "iov_link_queue_depth";
inline constexpr char kLinkQueueCapacity[] = "iov_link_queue_capacity";
inline constexpr char kThrottleWaitSeconds[] = "iov_throttle_wait_seconds";
inline constexpr char kLinkSyscallsTotal[] = "iov_link_syscalls_total";
inline constexpr char kLinkFlushMsgs[] = "iov_link_flush_msgs";
inline constexpr char kLinkZerocopySendsTotal[] =
    "iov_link_zerocopy_sends_total";
inline constexpr char kLinkZerocopyCompletionsTotal[] =
    "iov_link_zerocopy_completions_total";
inline constexpr char kLinkZerocopyCopiedTotal[] =
    "iov_link_zerocopy_copied_total";
inline constexpr char kLinkZerocopyFallbacksTotal[] =
    "iov_link_zerocopy_fallbacks_total";

// --- Payload slab pool (per-node registry) --------------------------------
inline constexpr char kPoolSlabAcquiresTotal[] =
    "iov_pool_slab_acquires_total";
inline constexpr char kPoolSlabFreeBytes[] = "iov_pool_slab_free_bytes";

// --- Simulator substrate (per-SimNet registry, sim-time) ------------------
inline constexpr char kSimSwitchLatencySeconds[] =
    "iov_sim_switch_latency_seconds";
inline constexpr char kSimSwitchMessagesTotal[] =
    "iov_sim_switch_messages_total";
inline constexpr char kSimDeliveredBytesTotal[] =
    "iov_sim_delivered_bytes_total";
inline constexpr char kSimDeliveredMessagesTotal[] =
    "iov_sim_delivered_messages_total";
inline constexpr char kSimThrottleWaitSeconds[] =
    "iov_sim_throttle_wait_seconds";

// --- Observer (per-observer registry) -------------------------------------
inline constexpr char kObserverBootsTotal[] = "iov_observer_boots_total";
inline constexpr char kObserverReportsTotal[] = "iov_observer_reports_total";
inline constexpr char kObserverMalformedReportsTotal[] =
    "iov_observer_malformed_reports_total";
inline constexpr char kObserverTracesTotal[] = "iov_observer_traces_total";
inline constexpr char kObserverReportRttSeconds[] =
    "iov_observer_report_rtt_seconds";

// --- Chaos / fault injection (registry of the executing driver) -----------
inline constexpr char kChaosFaultsInjectedTotal[] =
    "iov_chaos_faults_injected_total";
inline constexpr char kChaosSessionsTornDownTotal[] =
    "iov_chaos_sessions_torn_down_total";
inline constexpr char kChaosRecoveryLatencySeconds[] =
    "iov_chaos_recovery_latency_seconds";

// --- Streaming churn scenarios (registry of the executing runner) ---------
inline constexpr char kStreamChurnEventsTotal[] =
    "iov_stream_churn_events_total";
inline constexpr char kStreamFramesTotal[] = "iov_stream_frames_total";
inline constexpr char kStreamFirstPacketSeconds[] =
    "iov_stream_first_packet_seconds";
inline constexpr char kStreamRejoinSeconds[] = "iov_stream_rejoin_seconds";
inline constexpr char kStreamGapSeconds[] = "iov_stream_gap_seconds";
inline constexpr char kStreamViewersInTree[] = "iov_stream_viewers_in_tree";
inline constexpr char kStreamOrphans[] = "iov_stream_orphans";
inline constexpr char kStreamTreeDepth[] = "iov_stream_tree_depth";
inline constexpr char kStreamTreeDegreeMax[] = "iov_stream_tree_degree_max";

}  // namespace iov::obs::names
