#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/strings.h"

namespace iov::obs {
namespace {

/// Replaces wire-reserved characters so names and label values can never
/// corrupt the single-line snapshot encoding.
std::string sanitize(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    switch (c) {
      case ',':
      case ';':
      case '=':
      case '{':
      case '}':
      case '|':
      case '\n':
      case '\r':
        c = '_';
        break;
      default:
        break;
    }
  }
  return out;
}

Labels sanitize_labels(Labels labels) {
  for (auto& [k, v] : labels) {
    k = sanitize(k);
    v = sanitize(v);
  }
  std::sort(labels.begin(), labels.end());
  return labels;
}

/// Shortest %g rendering that round-trips exactly: "1e-06" instead of
/// the %.17g noise "9.9999999999999995e-07" in exports and on the wire.
std::string format_double(double v) {
  for (int precision = 1; precision < 17; ++precision) {
    std::string s = strf("%.*g", precision, v);
    if (std::strtod(s.c_str(), nullptr) == v) return s;
  }
  return strf("%.17g", v);
}

bool parse_double(std::string_view s, double* out) {
  std::string buf(s);
  char* end = nullptr;
  *out = std::strtod(buf.c_str(), &end);
  return end != nullptr && *end == '\0' && !buf.empty();
}

bool parse_i64(std::string_view s, i64* out) {
  bool neg = false;
  if (!s.empty() && (s[0] == '-' || s[0] == '+')) {
    neg = s[0] == '-';
    s.remove_prefix(1);
  }
  unsigned long long u = 0;
  if (!parse_u64(s, 0x7fffffffffffffffull, &u)) return false;
  *out = neg ? -static_cast<i64>(u) : static_cast<i64>(u);
  return true;
}

void append_wire_labels(const Labels& labels, std::string* out) {
  if (labels.empty()) return;
  out->push_back('{');
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out->push_back(';');
    *out += labels[i].first;
    out->push_back('=');
    *out += labels[i].second;
  }
  out->push_back('}');
}

bool parse_wire_labels(std::string_view s, Labels* out) {
  for (std::string_view part : split(s, ';')) {
    auto eq = part.find('=');
    if (eq == std::string_view::npos) return false;
    out->emplace_back(std::string(part.substr(0, eq)),
                      std::string(part.substr(eq + 1)));
  }
  return true;
}

std::string prometheus_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// Renders `{k="v",...}`; `extra` appends one more pair (used for `le`).
std::string prometheus_labels(const Labels& labels,
                              const std::pair<std::string, std::string>*
                                  extra = nullptr) {
  if (labels.empty() && !extra) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += k;
    out += "=\"";
    out += prometheus_escape(v);
    out += "\"";
  }
  if (extra) {
    if (!first) out.push_back(',');
    out += extra->first;
    out += "=\"";
    out += prometheus_escape(extra->second);
    out += "\"";
  }
  out.push_back('}');
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strf("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

const char* kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

}  // namespace

// --- Histogram -------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<u64>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double x) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + x,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<u64> Histogram::bucket_counts() const {
  std::vector<u64> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

const std::vector<double>& default_latency_bounds() {
  // Powers of four from 1us to ~16.8s: 13 buckets spans sub-socket-write
  // latencies up to the longest throttle waits the benches provoke.
  static const std::vector<double> kBounds = {
      1e-6,       4e-6,       1.6e-5,   6.4e-5,   2.56e-4,  1.024e-3,
      4.096e-3,   1.6384e-2,  6.5536e-2, 0.262144, 1.048576, 4.194304,
      16.777216};
  return kBounds;
}

// --- MetricsSnapshot -------------------------------------------------------

void MetricsSnapshot::add_label(const std::string& key,
                                const std::string& value) {
  std::string k = sanitize(key);
  std::string v = sanitize(value);
  for (MetricSample& s : samples) {
    bool has = false;
    for (const auto& [lk, lv] : s.labels) {
      if (lk == k) {
        has = true;
        break;
      }
    }
    if (!has) {
      s.labels.emplace_back(k, v);
      std::sort(s.labels.begin(), s.labels.end());
    }
  }
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  samples.insert(samples.end(), other.samples.begin(), other.samples.end());
}

std::string MetricsSnapshot::serialize() const {
  std::string out;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const MetricSample& s = samples[i];
    if (i) out.push_back('|');
    switch (s.kind) {
      case MetricKind::kCounter:
        out.push_back('c');
        break;
      case MetricKind::kGauge:
        out.push_back('g');
        break;
      case MetricKind::kHistogram:
        out.push_back('h');
        break;
    }
    out.push_back(':');
    out += s.name;
    append_wire_labels(s.labels, &out);
    out.push_back(',');
    switch (s.kind) {
      case MetricKind::kCounter:
        out += strf("%llu", static_cast<unsigned long long>(s.value));
        break;
      case MetricKind::kGauge:
        out += strf("%lld", static_cast<long long>(s.value));
        break;
      case MetricKind::kHistogram: {
        for (std::size_t b = 0; b < s.hist.counts.size(); ++b) {
          if (b) out.push_back('/');
          if (b < s.hist.bounds.size()) {
            out += format_double(s.hist.bounds[b]);
          } else {
            out += "inf";
          }
          out += strf(":%llu",
                      static_cast<unsigned long long>(s.hist.counts[b]));
        }
        out += strf(",%llu,", static_cast<unsigned long long>(s.hist.count));
        out += format_double(s.hist.sum);
        break;
      }
    }
  }
  return out;
}

bool MetricsSnapshot::parse(std::string_view line, MetricsSnapshot* out) {
  out->samples.clear();
  if (trim(line).empty()) return true;
  for (std::string_view record : split(line, '|')) {
    auto colon = record.find(':');
    if (colon == std::string_view::npos || colon == 0) return false;
    std::string_view kind_sv = record.substr(0, colon);
    std::string_view rest = record.substr(colon + 1);

    MetricSample s;
    // Name runs to the first '{' (labels follow) or ',' (payload follows).
    auto name_end = rest.find_first_of("{,");
    if (name_end == std::string_view::npos || name_end == 0) return false;
    s.name = std::string(rest.substr(0, name_end));
    rest.remove_prefix(name_end);
    if (rest[0] == '{') {
      auto close = rest.find('}');
      if (close == std::string_view::npos) return false;
      if (!parse_wire_labels(rest.substr(1, close - 1), &s.labels))
        return false;
      rest.remove_prefix(close + 1);
    }
    if (rest.empty() || rest[0] != ',') return false;
    std::string_view payload = rest.substr(1);

    if (kind_sv == "c") {
      s.kind = MetricKind::kCounter;
      unsigned long long v = 0;
      if (!parse_u64(payload, ~0ull, &v)) return false;
      s.value = static_cast<double>(v);
    } else if (kind_sv == "g") {
      s.kind = MetricKind::kGauge;
      i64 v = 0;
      if (!parse_i64(payload, &v)) return false;
      s.value = static_cast<double>(v);
    } else if (kind_sv == "h") {
      s.kind = MetricKind::kHistogram;
      auto fields = split(payload, ',');
      if (fields.size() != 3) return false;
      for (std::string_view bucket : split(fields[0], '/')) {
        auto bc = bucket.rfind(':');
        if (bc == std::string_view::npos) return false;
        std::string_view bound_sv = bucket.substr(0, bc);
        unsigned long long n = 0;
        if (!parse_u64(bucket.substr(bc + 1), ~0ull, &n)) return false;
        if (bound_sv != "inf") {
          double bound = 0;
          if (!parse_double(bound_sv, &bound)) return false;
          s.hist.bounds.push_back(bound);
        }
        s.hist.counts.push_back(n);
      }
      if (s.hist.counts.size() != s.hist.bounds.size() + 1) return false;
      unsigned long long n = 0;
      if (!parse_u64(fields[1], ~0ull, &n)) return false;
      s.hist.count = n;
      if (!parse_double(fields[2], &s.hist.sum)) return false;
    } else {
      continue;  // unknown kind from a newer node: skip, keep the rest
    }
    out->samples.push_back(std::move(s));
  }
  return true;
}

std::string MetricsSnapshot::to_prometheus() const {
  // Group samples by metric name in first-appearance order so a merged
  // multi-node snapshot still emits exactly one `# TYPE` line per name.
  std::vector<std::string> order;
  std::vector<std::vector<const MetricSample*>> groups;
  for (const MetricSample& s : samples) {
    std::size_t i = 0;
    for (; i < order.size(); ++i)
      if (order[i] == s.name) break;
    if (i == order.size()) {
      order.push_back(s.name);
      groups.emplace_back();
    }
    groups[i].push_back(&s);
  }

  std::string out;
  for (std::size_t g = 0; g < order.size(); ++g) {
    out += strf("# TYPE %s %s\n", order[g].c_str(),
                kind_name(groups[g][0]->kind));
    for (const MetricSample* s : groups[g]) {
      switch (s->kind) {
        case MetricKind::kCounter:
        case MetricKind::kGauge:
          out += s->name + prometheus_labels(s->labels) + " " +
                 format_double(s->value) + "\n";
          break;
        case MetricKind::kHistogram: {
          u64 cumulative = 0;
          for (std::size_t b = 0; b < s->hist.counts.size(); ++b) {
            cumulative += s->hist.counts[b];
            std::pair<std::string, std::string> le{
                "le", b < s->hist.bounds.size()
                          ? format_double(s->hist.bounds[b])
                          : "+Inf"};
            out += s->name + "_bucket" + prometheus_labels(s->labels, &le) +
                   strf(" %llu\n", static_cast<unsigned long long>(cumulative));
          }
          out += s->name + "_sum" + prometheus_labels(s->labels) + " " +
                 format_double(s->hist.sum) + "\n";
          out += s->name + "_count" + prometheus_labels(s->labels) +
                 strf(" %llu\n", static_cast<unsigned long long>(s->hist.count));
          break;
        }
      }
    }
  }
  return out;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "[";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const MetricSample& s = samples[i];
    if (i) out.push_back(',');
    out += "\n  {\"name\":\"" + json_escape(s.name) + "\",\"type\":\"" +
           kind_name(s.kind) + "\",\"labels\":{";
    for (std::size_t l = 0; l < s.labels.size(); ++l) {
      if (l) out.push_back(',');
      out += "\"" + json_escape(s.labels[l].first) + "\":\"" +
             json_escape(s.labels[l].second) + "\"";
    }
    out += "}";
    if (s.kind == MetricKind::kHistogram) {
      out += ",\"count\":" +
             strf("%llu", static_cast<unsigned long long>(s.hist.count));
      out += ",\"sum\":" + format_double(s.hist.sum);
      out += ",\"buckets\":[";
      for (std::size_t b = 0; b < s.hist.counts.size(); ++b) {
        if (b) out.push_back(',');
        out += "{\"le\":";
        if (b < s.hist.bounds.size()) {
          out += format_double(s.hist.bounds[b]);
        } else {
          out += "\"+Inf\"";
        }
        out += strf(",\"count\":%llu}",
                    static_cast<unsigned long long>(s.hist.counts[b]));
      }
      out += "]";
    } else {
      out += ",\"value\":" + format_double(s.value);
    }
    out += "}";
  }
  out += "\n]\n";
  return out;
}

std::string MetricsSnapshot::to_csv() const {
  std::string out = "name,kind,labels,value,count,sum,buckets\n";
  for (const MetricSample& s : samples) {
    std::string labels;
    for (std::size_t l = 0; l < s.labels.size(); ++l) {
      if (l) labels.push_back(';');
      labels += s.labels[l].first + "=" + s.labels[l].second;
    }
    out += s.name;
    out += ",";
    out += kind_name(s.kind);
    out += "," + labels + ",";
    if (s.kind == MetricKind::kHistogram) {
      out += strf(",%llu,", static_cast<unsigned long long>(s.hist.count));
      out += format_double(s.hist.sum);
      out += ",";
      for (std::size_t b = 0; b < s.hist.counts.size(); ++b) {
        if (b) out.push_back('/');
        if (b < s.hist.bounds.size()) {
          out += format_double(s.hist.bounds[b]);
        } else {
          out += "inf";
        }
        out += strf(":%llu", static_cast<unsigned long long>(s.hist.counts[b]));
      }
    } else {
      out += format_double(s.value) + ",,,";
    }
    out += "\n";
  }
  return out;
}

// --- MetricsRegistry -------------------------------------------------------

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    std::string_view name, Labels labels, MetricKind kind,
    const std::vector<double>* bounds) {
  std::string sane_name = sanitize(name);
  Labels sane_labels = sanitize_labels(std::move(labels));
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : entries_) {
    if (e->name == sane_name && e->labels == sane_labels) return *e;
  }
  auto e = std::make_unique<Entry>();
  e->name = std::move(sane_name);
  e->labels = std::move(sane_labels);
  e->kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      e->counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      e->gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      e->histogram = std::make_unique<Histogram>(*bounds);
      break;
  }
  entries_.push_back(std::move(e));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(std::string_view name, Labels labels) {
  Entry& e =
      find_or_create(name, std::move(labels), MetricKind::kCounter, nullptr);
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels) {
  Entry& e =
      find_or_create(name, std::move(labels), MetricKind::kGauge, nullptr);
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, Labels labels,
                                      const std::vector<double>& bounds) {
  Entry& e =
      find_or_create(name, std::move(labels), MetricKind::kHistogram, &bounds);
  return *e.histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  out.samples.reserve(entries_.size());
  for (const auto& e : entries_) {
    MetricSample s;
    s.name = e->name;
    s.kind = e->kind;
    s.labels = e->labels;
    switch (e->kind) {
      case MetricKind::kCounter:
        s.value = static_cast<double>(e->counter->value());
        break;
      case MetricKind::kGauge:
        s.value = static_cast<double>(e->gauge->value());
        break;
      case MetricKind::kHistogram:
        s.hist.bounds = e->histogram->bounds();
        s.hist.counts = e->histogram->bucket_counts();
        s.hist.count = e->histogram->count();
        s.hist.sum = e->histogram->sum();
        break;
    }
    out.samples.push_back(std::move(s));
  }
  return out;
}

}  // namespace iov::obs
