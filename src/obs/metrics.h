// Engine-wide observability layer: a lock-cheap registry of named
// counters, gauges, and fixed-bucket latency histograms.
//
// Design:
//  - Registration (`counter()` / `gauge()` / `histogram()`) takes a mutex
//    and returns a stable reference. Hot paths cache that reference once
//    and then touch only std::atomic members — no lock, no allocation.
//  - Registries are per-component (one per Engine, one per Observer, one
//    per SimNet), never process-global: tests and benches run several
//    engines in one process and their metrics must not bleed together.
//  - `snapshot()` produces a value-type `MetricsSnapshot` that knows how
//    to render itself as Prometheus text, JSON, CSV, and a compact
//    single-line wire form that rides inside the versioned `kReport`
//    payload (see docs/PROTOCOLS.md and docs/METRICS.md).
//
// Wire form (one line, so it can live in a `metrics=` report field):
//   record ::= kind ':' name [ '{' k '=' v (';' k '=' v)* '}' ] ',' payload
//   counter payload  ::= u64
//   gauge payload    ::= i64
//   histogram payload::= bound ':' count ('/' bound ':' count)* ',' n ',' sum
//                        (last bound is the literal "inf")
//   snapshot ::= record ('|' record)*
// Unknown record kinds are skipped on parse (forward compatibility).
// Reserved characters , ; = { } | and newline are replaced with '_' in
// names and label values at registration time.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.h"

namespace iov::obs {

/// Key/value metric labels, kept sorted by key.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(u64 n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  u64 value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<u64> v_{0};
};

/// A value that can go up and down (queue depth, capacity).
class Gauge {
 public:
  void set(i64 v) { v_.store(v, std::memory_order_relaxed); }
  void add(i64 d) { v_.fetch_add(d, std::memory_order_relaxed); }
  void sub(i64 d) { v_.fetch_sub(d, std::memory_order_relaxed); }
  i64 value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<i64> v_{0};
};

/// Fixed-bucket histogram; bucket `i` counts observations <= bounds[i],
/// plus one implicit +inf bucket. Thread-safe, wait-free observe().
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double x);
  /// Convenience for the common case of recording a latency in seconds.
  void observe_duration(Duration d) { observe(to_seconds(d)); }

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts, bounds().size() + 1 entries (last is +inf).
  std::vector<u64> bucket_counts() const;
  u64 count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<u64>[]> buckets_;
  std::atomic<u64> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Exponential bounds from 1us to ~16s — the default for latency
/// histograms (switch latency, throttle waits, report round-trips).
const std::vector<double>& default_latency_bounds();

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Point-in-time copy of one histogram's state.
struct HistogramData {
  std::vector<double> bounds;  ///< ascending upper bounds (no +inf)
  std::vector<u64> counts;     ///< bounds.size() + 1, last is +inf
  u64 count = 0;
  double sum = 0.0;
};

/// Point-in-time copy of one metric.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  Labels labels;
  double value = 0.0;  ///< counter / gauge value
  HistogramData hist;  ///< populated for kHistogram only
};

/// A value-type snapshot of a registry (or a merge of several).
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  bool empty() const { return samples.empty(); }

  /// Adds `key`=`value` to every sample that does not already carry that
  /// label key; the observer uses this to tag per-node snapshots.
  void add_label(const std::string& key, const std::string& value);

  /// Appends all samples of `other`.
  void merge(const MetricsSnapshot& other);

  /// Compact single-line wire form (see header comment).
  std::string serialize() const;

  /// Parses the wire form. Unknown record kinds are skipped; returns
  /// false only on structural corruption. `*out` is cleared first.
  static bool parse(std::string_view line, MetricsSnapshot* out);

  /// Prometheus text exposition format. `# TYPE` lines are emitted once
  /// per metric name even when samples from several nodes are merged.
  std::string to_prometheus() const;

  /// JSON array of sample objects.
  std::string to_json() const;

  /// CSV with header `name,kind,labels,value,count,sum,buckets`.
  std::string to_csv() const;
};

/// Named metric registry. Registration is mutex-guarded; returned
/// references are stable for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter registered under (name, labels), creating it on
  /// first use.
  Counter& counter(std::string_view name, Labels labels = {});
  Gauge& gauge(std::string_view name, Labels labels = {});
  /// `bounds` is consulted only on first registration of (name, labels).
  Histogram& histogram(std::string_view name, Labels labels = {},
                       const std::vector<double>& bounds =
                           default_latency_bounds());

  MetricsSnapshot snapshot() const;

 private:
  struct Entry {
    std::string name;
    Labels labels;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(std::string_view name, Labels labels,
                        MetricKind kind, const std::vector<double>* bounds);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  ///< registration order
};

}  // namespace iov::obs
