#include "apps/streaming.h"

#include <algorithm>
#include <cmath>

#include "message/codec.h"

namespace iov::apps {

bool FrameInfo::parse(const Msg& m, FrameInfo* out) {
  if (m.payload_size() < kHeaderBytes) return false;
  const u8* p = m.payload()->data();
  out->emitted = static_cast<TimePoint>(codec::read_u64(p));
  out->frame_id = codec::read_u32(p + 8);
  out->type = p[12] == static_cast<u8>(FrameType::kIFrame)
                  ? FrameType::kIFrame
                  : FrameType::kPFrame;
  return true;
}

VideoSource::VideoSource(double fps, std::size_t gop,
                         std::size_t iframe_bytes, std::size_t pframe_bytes)
    : fps_(fps),
      gop_(std::max<std::size_t>(gop, 1)),
      iframe_bytes_(std::max<std::size_t>(iframe_bytes,
                                          FrameInfo::kHeaderBytes)),
      pframe_bytes_(std::max<std::size_t>(pframe_bytes,
                                          FrameInfo::kHeaderBytes)) {}

double VideoSource::mean_bitrate() const {
  const double per_gop =
      static_cast<double>(iframe_bytes_) +
      static_cast<double>(pframe_bytes_) * static_cast<double>(gop_ - 1);
  return fps_ * per_gop / static_cast<double>(gop_);
}

MsgPtr VideoSource::next_message(u32 app, const NodeId& self, TimePoint now) {
  if (start_ < 0) start_ = now;
  // Frame i is due at start + i/fps; emit only when its time has come
  // (the source is CBR in frames, not back-to-back).
  const TimePoint due =
      start_ + static_cast<Duration>(static_cast<double>(next_frame_) /
                                     fps_ * static_cast<double>(kNanosPerSec));
  if (now < due) return nullptr;

  const bool iframe = (next_frame_ % gop_) == 0;
  const std::size_t size = iframe ? iframe_bytes_ : pframe_bytes_;
  auto bytes = Buffer::pattern_bytes(size, next_frame_);
  codec::write_u64(bytes.data(), static_cast<u64>(now));
  codec::write_u32(bytes.data() + 8, next_frame_);
  bytes[12] = static_cast<u8>(iframe ? FrameType::kIFrame
                                     : FrameType::kPFrame);
  const u32 id = next_frame_++;
  return Msg::data(self, app, id, Buffer::wrap(std::move(bytes)));
}

void VideoSource::deliver(const MsgPtr& m, TimePoint now) {
  (void)m;
  (void)now;  // sources do not consume
}

PlayoutSink::PlayoutSink(double fps, Duration startup_delay)
    : fps_(fps), startup_delay_(startup_delay) {
  stats_.fps = fps;
}

MsgPtr PlayoutSink::next_message(u32 app, const NodeId& self, TimePoint now) {
  (void)app;
  (void)self;
  (void)now;
  return nullptr;
}

void PlayoutSink::deliver(const MsgPtr& m, TimePoint now) {
  FrameInfo frame;
  if (!FrameInfo::parse(*m, &frame)) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (stats_.playout_base < 0) {
    // Frame timing is anchored to the stream position of the *first*
    // frame we saw, so a mid-stream join still gets sensible deadlines.
    stats_.playout_base =
        now + startup_delay_ -
        static_cast<Duration>(static_cast<double>(frame.frame_id) / fps_ *
                              static_cast<double>(kNanosPerSec));
  }
  if (!seen_.insert(frame.frame_id).second) {
    ++stats_.duplicates;
    return;
  }
  ++stats_.received;
  stats_.highest_frame = std::max(stats_.highest_frame, frame.frame_id);
  delay_sum_ms_ += to_seconds(now - frame.emitted) * 1000.0;
  stats_.mean_delay_ms = delay_sum_ms_ / static_cast<double>(stats_.received);

  const TimePoint deadline =
      stats_.playout_base +
      static_cast<Duration>(static_cast<double>(frame.frame_id) / fps_ *
                            static_cast<double>(kNanosPerSec));
  if (now <= deadline) {
    ++stats_.on_time;
  } else {
    ++stats_.late;
  }
}

u64 PlayoutSink::Stats::missing(TimePoint now) const {
  if (playout_base < 0 || fps <= 0.0) return 0;
  const double elapsed = to_seconds(now - playout_base);
  if (elapsed <= 0.0) return 0;
  const u64 due = static_cast<u64>(elapsed * fps);
  return due > received ? due - received : 0;
}

double PlayoutSink::Stats::on_time_ratio(TimePoint now) const {
  const u64 due_total = on_time + late + missing(now);
  if (due_total == 0) return 1.0;
  return static_cast<double>(on_time) / static_cast<double>(due_total);
}

PlayoutSink::Stats PlayoutSink::stats(TimePoint now) const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  (void)now;
  return out;
}

}  // namespace iov::apps
