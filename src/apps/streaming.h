// Media-streaming application layer — the concrete form of the paper's
// closing claim ("our recent experiences of successfully and rapidly
// deploying a Windows-based MPEG-4 real-time streaming multicast
// application on iOverlay have verified our claims", §4) and of the
// delay-sensitive application class §2.4 discusses (strict latency
// requirements, small per-node buffers).
//
// VideoSource emits a constant-frame-rate stream with a GOP structure:
// every `gop` frames an I-frame (large), the rest P-frames (small). Each
// frame's payload carries a 16-byte header (emission timestamp, frame
// id, frame type) ahead of patterned filler.
//
// PlayoutSink models a receiver with a fixed startup buffering delay:
// frame i's playout deadline is first_arrival + startup_delay + i/fps.
// Frames that arrive after their deadline count as late (a visible
// glitch); frames never seen by the time the next ones play count as
// missing. The on-time ratio is the streaming quality the experiments
// report.
#pragma once

#include <mutex>
#include <set>

#include "algorithm/application.h"
#include "message/buffer.h"

namespace iov::apps {

enum class FrameType : u8 { kIFrame = 1, kPFrame = 2 };

/// Parsed view of a frame payload header.
struct FrameInfo {
  TimePoint emitted = 0;
  u32 frame_id = 0;
  FrameType type = FrameType::kPFrame;

  static constexpr std::size_t kHeaderBytes = 16;
  /// Parses the first kHeaderBytes of `m`'s payload; false if too short.
  static bool parse(const Msg& m, FrameInfo* out);
};

class VideoSource : public Application {
 public:
  /// `fps` frames per second; I-frames every `gop` frames of
  /// `iframe_bytes`, P-frames of `pframe_bytes`. Mean bitrate ≈
  /// fps * (iframe + (gop-1)*pframe) / gop.
  VideoSource(double fps, std::size_t gop, std::size_t iframe_bytes,
              std::size_t pframe_bytes);

  MsgPtr next_message(u32 app, const NodeId& self, TimePoint now) override;
  void deliver(const MsgPtr& m, TimePoint now) override;

  double mean_bitrate() const;  // bytes/second
  u64 produced() const { return next_frame_; }

 private:
  const double fps_;
  const std::size_t gop_;
  const std::size_t iframe_bytes_;
  const std::size_t pframe_bytes_;
  u32 next_frame_ = 0;
  TimePoint start_ = -1;
};

class PlayoutSink : public Application {
 public:
  /// Playback begins `startup_delay` after the first frame arrives.
  PlayoutSink(double fps, Duration startup_delay);

  MsgPtr next_message(u32 app, const NodeId& self, TimePoint now) override;
  void deliver(const MsgPtr& m, TimePoint now) override;

  struct Stats {
    u64 received = 0;
    u64 on_time = 0;
    u64 late = 0;        ///< arrived after the playout deadline
    u64 duplicates = 0;
    double mean_delay_ms = 0.0;  ///< network delay (emission -> arrival)
    u32 highest_frame = 0;
    /// Frames that should have played by `now` but never arrived.
    u64 missing(TimePoint now) const;
    TimePoint playout_base = -1;  ///< deadline of frame 0
    double fps = 0.0;

    /// Fraction of due frames that played on time: the quality metric.
    double on_time_ratio(TimePoint now) const;
  };
  /// Thread safe.
  Stats stats(TimePoint now) const;

 private:
  const double fps_;
  const Duration startup_delay_;
  mutable std::mutex mu_;
  Stats stats_;
  double delay_sum_ms_ = 0.0;
  std::set<u32> seen_;
};

}  // namespace iov::apps
