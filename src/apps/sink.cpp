#include "apps/sink.h"

#include <cstring>

#include "message/codec.h"

namespace iov::apps {

namespace {
u64 origin_key(const NodeId& id) {
  return (static_cast<u64>(id.ip()) << 16) | id.port();
}
}  // namespace

MsgPtr SinkApp::next_message(u32 app, const NodeId& self, TimePoint now) {
  (void)app;
  (void)self;
  (void)now;
  return nullptr;  // sinks never produce
}

void SinkApp::deliver(const MsgPtr& m, TimePoint now) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.msgs += 1;
  stats_.bytes += m->payload_size();
  if (stats_.first_delivery < 0) stats_.first_delivery = now;
  stats_.last_delivery = now;
  meter_.record(m->payload_size(), now);

  auto& seqs = seen_[origin_key(m->origin())];
  if (!seqs.insert(m->seq()).second) {
    stats_.duplicates += 1;
  } else {
    stats_.distinct += 1;
  }

  if (track_delay_ && m->payload_size() >= 8) {
    const auto sent =
        static_cast<TimePoint>(codec::read_u64(m->payload()->data()));
    if (sent >= 0 && sent <= now) {
      delay_.add(static_cast<double>(now - sent));
    }
  }

  if (expected_payload_ > 0) {
    const auto expected = Buffer::pattern(expected_payload_, m->seq());
    if (m->payload_size() != expected->size() ||
        std::memcmp(m->payload()->data(), expected->data(),
                    expected->size()) != 0) {
      stats_.corrupt += 1;
    }
  }
}

SinkApp::Stats SinkApp::stats(TimePoint now) const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.rate_bps = meter_.rate(now);
  return out;
}

double SinkApp::mean_delay() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delay_.mean();
}

double SinkApp::max_delay() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delay_.max();
}

double SinkApp::mean_goodput() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (stats_.msgs < 2 || stats_.last_delivery <= stats_.first_delivery) {
    return 0.0;
  }
  return static_cast<double>(stats_.bytes) /
         to_seconds(stats_.last_delivery - stats_.first_delivery);
}

}  // namespace iov::apps
