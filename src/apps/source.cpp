#include "apps/source.h"

#include "message/codec.h"

namespace iov::apps {

MsgPtr BackToBackSource::next_message(u32 app, const NodeId& self,
                                      TimePoint now) {
  (void)now;
  const u64 n = produced_.load(std::memory_order_relaxed);
  if (max_msgs_ > 0 && n >= max_msgs_) return nullptr;
  produced_.fetch_add(1, std::memory_order_relaxed);
  // Payload pattern keyed by sequence lets sinks verify integrity.
  return Msg::data(self, app, static_cast<u32>(n),
                   Buffer::pattern(payload_bytes_, static_cast<u32>(n)));
}

void BackToBackSource::deliver(const MsgPtr& m, TimePoint now) {
  (void)m;
  (void)now;  // sources do not consume
}

MsgPtr CbrSource::next_message(u32 app, const NodeId& self, TimePoint now) {
  if (start_ < 0) start_ = now;
  const double allowance =
      bytes_per_sec_ * to_seconds(now - start_) - bytes_sent_;
  if (allowance < static_cast<double>(payload_bytes_)) return nullptr;
  bytes_sent_ += static_cast<double>(payload_bytes_);
  const u64 n = produced_.fetch_add(1, std::memory_order_relaxed);
  if (!timestamped_ || payload_bytes_ < 8) {
    return Msg::data(self, app, static_cast<u32>(n),
                     Buffer::pattern(payload_bytes_, static_cast<u32>(n)));
  }
  auto bytes = Buffer::pattern_bytes(payload_bytes_, static_cast<u32>(n));
  codec::write_u64(bytes.data(), static_cast<u64>(now));
  return Msg::data(self, app, static_cast<u32>(n),
                   Buffer::wrap(std::move(bytes)));
}

void CbrSource::deliver(const MsgPtr& m, TimePoint now) {
  (void)m;
  (void)now;
}

}  // namespace iov::apps
