// The measuring receiver application: counts delivered messages, checks
// payload integrity against the source's deterministic pattern, tracks
// per-origin sequence gaps and duplicates, and measures goodput. This is
// what the paper's experiments read end-to-end throughput from.
#pragma once

#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "algorithm/application.h"
#include "common/stats.h"
#include "message/buffer.h"
#include "net/throughput.h"

namespace iov::apps {

class SinkApp : public Application {
 public:
  /// `expected_payload_bytes` > 0 additionally verifies each payload is
  /// the Buffer::pattern of its sequence number (corruption check).
  explicit SinkApp(std::size_t expected_payload_bytes = 0)
      : expected_payload_(expected_payload_bytes) {}

  /// Interprets the first 8 payload bytes as the sender's timestamp (see
  /// CbrSource's `timestamped` mode) and accumulates end-to-end delay.
  void track_delay(bool enable) { track_delay_ = enable; }

  /// Mean / max end-to-end delay in nanoseconds (0 if none measured).
  double mean_delay() const;
  double max_delay() const;

  MsgPtr next_message(u32 app, const NodeId& self, TimePoint now) override;
  void deliver(const MsgPtr& m, TimePoint now) override;

  struct Stats {
    u64 msgs = 0;
    u64 bytes = 0;
    u64 duplicates = 0;   ///< same (origin, seq) seen more than once
    u64 corrupt = 0;      ///< payload failed the pattern check
    u64 distinct = 0;     ///< unique (origin, seq) pairs
    double rate_bps = 0;  ///< goodput over the meter window
    TimePoint first_delivery = -1;
    TimePoint last_delivery = -1;
  };
  /// Thread safe; `now` evaluates the goodput window.
  Stats stats(TimePoint now) const;

  /// Mean goodput between first and last delivery (robust for short runs).
  double mean_goodput() const;

 private:
  const std::size_t expected_payload_;
  bool track_delay_ = false;
  mutable std::mutex mu_;
  ThroughputMeter meter_{seconds(2.0)};
  std::unordered_map<u64, std::unordered_set<u32>> seen_;  // origin key -> seqs
  Stats stats_;
  RunningStats delay_;
};

}  // namespace iov::apps
