// Traffic-generating applications (the paper's application layer).
//
// BackToBackSource reproduces the workload of the paper's engine
// experiments (§2.4): "an application that sends back-to-back traffic
// from one end of the chain to the other as fast as possible". It always
// has a message ready; the engine's source pump throttles it against
// sender-buffer back-pressure.
//
// CbrSource produces constant-bit-rate traffic (a streaming-like source),
// pacing itself against the engine clock.
#pragma once

#include <atomic>

#include "algorithm/application.h"
#include "message/buffer.h"

namespace iov::apps {

class BackToBackSource : public Application {
 public:
  /// `payload_bytes` per message (the paper uses 5 KB). `max_msgs` > 0
  /// stops the source after that many messages (0 = unbounded).
  explicit BackToBackSource(std::size_t payload_bytes, u64 max_msgs = 0)
      : payload_bytes_(payload_bytes), max_msgs_(max_msgs) {}

  MsgPtr next_message(u32 app, const NodeId& self, TimePoint now) override;
  void deliver(const MsgPtr& m, TimePoint now) override;

  u64 produced() const { return produced_.load(std::memory_order_relaxed); }

 private:
  const std::size_t payload_bytes_;
  const u64 max_msgs_;
  std::atomic<u64> produced_{0};
};

class CbrSource : public Application {
 public:
  /// Emits `payload_bytes` messages so the long-run data rate approaches
  /// `bytes_per_sec`. With `timestamped`, the first 8 payload bytes carry
  /// the emission time (big-endian nanoseconds on the substrate clock) so
  /// sinks can measure end-to-end delay (see SinkApp::track_delay).
  CbrSource(std::size_t payload_bytes, double bytes_per_sec,
            bool timestamped = false)
      : payload_bytes_(payload_bytes),
        bytes_per_sec_(bytes_per_sec),
        timestamped_(timestamped) {}

  MsgPtr next_message(u32 app, const NodeId& self, TimePoint now) override;
  void deliver(const MsgPtr& m, TimePoint now) override;

  u64 produced() const { return produced_.load(std::memory_order_relaxed); }

 private:
  const std::size_t payload_bytes_;
  const double bytes_per_sec_;
  const bool timestamped_;
  std::atomic<u64> produced_{0};
  TimePoint start_ = -1;
  double bytes_sent_ = 0.0;
};

}  // namespace iov::apps
