# Empty dependencies file for pubsub_demo.
# This may be replaced when dependencies are built.
