file(REMOVE_RECURSE
  "CMakeFiles/pubsub_demo.dir/pubsub_demo.cpp.o"
  "CMakeFiles/pubsub_demo.dir/pubsub_demo.cpp.o.d"
  "pubsub_demo"
  "pubsub_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pubsub_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
