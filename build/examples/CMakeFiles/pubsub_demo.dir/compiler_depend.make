# Empty compiler generated dependencies file for pubsub_demo.
# This may be replaced when dependencies are built.
