file(REMOVE_RECURSE
  "CMakeFiles/multicast_chain.dir/multicast_chain.cpp.o"
  "CMakeFiles/multicast_chain.dir/multicast_chain.cpp.o.d"
  "multicast_chain"
  "multicast_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicast_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
