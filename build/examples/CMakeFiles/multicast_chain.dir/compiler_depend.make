# Empty compiler generated dependencies file for multicast_chain.
# This may be replaced when dependencies are built.
