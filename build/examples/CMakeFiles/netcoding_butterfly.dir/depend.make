# Empty dependencies file for netcoding_butterfly.
# This may be replaced when dependencies are built.
