file(REMOVE_RECURSE
  "CMakeFiles/netcoding_butterfly.dir/netcoding_butterfly.cpp.o"
  "CMakeFiles/netcoding_butterfly.dir/netcoding_butterfly.cpp.o.d"
  "netcoding_butterfly"
  "netcoding_butterfly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netcoding_butterfly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
