# Empty dependencies file for dht_demo.
# This may be replaced when dependencies are built.
