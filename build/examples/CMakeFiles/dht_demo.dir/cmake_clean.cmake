file(REMOVE_RECURSE
  "CMakeFiles/dht_demo.dir/dht_demo.cpp.o"
  "CMakeFiles/dht_demo.dir/dht_demo.cpp.o.d"
  "dht_demo"
  "dht_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dht_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
