file(REMOVE_RECURSE
  "CMakeFiles/federation_demo.dir/federation_demo.cpp.o"
  "CMakeFiles/federation_demo.dir/federation_demo.cpp.o.d"
  "federation_demo"
  "federation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
