# Empty compiler generated dependencies file for federation_demo.
# This may be replaced when dependencies are built.
