file(REMOVE_RECURSE
  "CMakeFiles/tree_join.dir/tree_join.cpp.o"
  "CMakeFiles/tree_join.dir/tree_join.cpp.o.d"
  "tree_join"
  "tree_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
