# Empty dependencies file for tree_join.
# This may be replaced when dependencies are built.
