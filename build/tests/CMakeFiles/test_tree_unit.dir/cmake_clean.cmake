file(REMOVE_RECURSE
  "CMakeFiles/test_tree_unit.dir/trees/test_tree_unit.cpp.o"
  "CMakeFiles/test_tree_unit.dir/trees/test_tree_unit.cpp.o.d"
  "test_tree_unit"
  "test_tree_unit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
