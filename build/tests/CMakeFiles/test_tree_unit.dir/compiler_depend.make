# Empty compiler generated dependencies file for test_tree_unit.
# This may be replaced when dependencies are built.
