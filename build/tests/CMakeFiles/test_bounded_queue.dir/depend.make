# Empty dependencies file for test_bounded_queue.
# This may be replaced when dependencies are built.
