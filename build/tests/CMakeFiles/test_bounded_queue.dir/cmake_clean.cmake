file(REMOVE_RECURSE
  "CMakeFiles/test_bounded_queue.dir/common/test_bounded_queue.cpp.o"
  "CMakeFiles/test_bounded_queue.dir/common/test_bounded_queue.cpp.o.d"
  "test_bounded_queue"
  "test_bounded_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bounded_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
