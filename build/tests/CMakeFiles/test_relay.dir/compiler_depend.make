# Empty compiler generated dependencies file for test_relay.
# This may be replaced when dependencies are built.
