file(REMOVE_RECURSE
  "CMakeFiles/test_relay.dir/algorithm/test_relay.cpp.o"
  "CMakeFiles/test_relay.dir/algorithm/test_relay.cpp.o.d"
  "test_relay"
  "test_relay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
