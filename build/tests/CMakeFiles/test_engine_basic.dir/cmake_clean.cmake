file(REMOVE_RECURSE
  "CMakeFiles/test_engine_basic.dir/engine/test_engine_basic.cpp.o"
  "CMakeFiles/test_engine_basic.dir/engine/test_engine_basic.cpp.o.d"
  "test_engine_basic"
  "test_engine_basic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
