# Empty compiler generated dependencies file for test_engine_basic.
# This may be replaced when dependencies are built.
