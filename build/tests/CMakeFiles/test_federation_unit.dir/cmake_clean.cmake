file(REMOVE_RECURSE
  "CMakeFiles/test_federation_unit.dir/federation/test_federation_unit.cpp.o"
  "CMakeFiles/test_federation_unit.dir/federation/test_federation_unit.cpp.o.d"
  "test_federation_unit"
  "test_federation_unit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_federation_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
