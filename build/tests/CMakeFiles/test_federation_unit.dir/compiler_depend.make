# Empty compiler generated dependencies file for test_federation_unit.
# This may be replaced when dependencies are built.
