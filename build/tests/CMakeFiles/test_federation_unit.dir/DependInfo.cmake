
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/federation/test_federation_unit.cpp" "tests/CMakeFiles/test_federation_unit.dir/federation/test_federation_unit.cpp.o" "gcc" "tests/CMakeFiles/test_federation_unit.dir/federation/test_federation_unit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/iov_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/observer/CMakeFiles/iov_observer.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/iov_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/algorithm/CMakeFiles/iov_algorithm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/iov_net.dir/DependInfo.cmake"
  "/root/repo/build/src/message/CMakeFiles/iov_message.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/iov_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/iov_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/coding/CMakeFiles/iov_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/trees/CMakeFiles/iov_trees.dir/DependInfo.cmake"
  "/root/repo/build/src/federation/CMakeFiles/iov_federation.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
