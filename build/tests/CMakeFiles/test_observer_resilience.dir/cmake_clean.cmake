file(REMOVE_RECURSE
  "CMakeFiles/test_observer_resilience.dir/observer/test_observer_resilience.cpp.o"
  "CMakeFiles/test_observer_resilience.dir/observer/test_observer_resilience.cpp.o.d"
  "test_observer_resilience"
  "test_observer_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_observer_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
