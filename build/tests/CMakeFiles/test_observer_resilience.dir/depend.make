# Empty dependencies file for test_observer_resilience.
# This may be replaced when dependencies are built.
