file(REMOVE_RECURSE
  "CMakeFiles/test_engine_failures.dir/engine/test_engine_failures.cpp.o"
  "CMakeFiles/test_engine_failures.dir/engine/test_engine_failures.cpp.o.d"
  "test_engine_failures"
  "test_engine_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
