# Empty compiler generated dependencies file for test_engine_failures.
# This may be replaced when dependencies are built.
