file(REMOVE_RECURSE
  "CMakeFiles/test_msg.dir/message/test_msg.cpp.o"
  "CMakeFiles/test_msg.dir/message/test_msg.cpp.o.d"
  "test_msg"
  "test_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
