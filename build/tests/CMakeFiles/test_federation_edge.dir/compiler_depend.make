# Empty compiler generated dependencies file for test_federation_edge.
# This may be replaced when dependencies are built.
