file(REMOVE_RECURSE
  "CMakeFiles/test_federation_edge.dir/federation/test_federation_edge.cpp.o"
  "CMakeFiles/test_federation_edge.dir/federation/test_federation_edge.cpp.o.d"
  "test_federation_edge"
  "test_federation_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_federation_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
