file(REMOVE_RECURSE
  "CMakeFiles/test_algorithm_base.dir/algorithm/test_algorithm_base.cpp.o"
  "CMakeFiles/test_algorithm_base.dir/algorithm/test_algorithm_base.cpp.o.d"
  "test_algorithm_base"
  "test_algorithm_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algorithm_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
