# Empty dependencies file for test_tree_failures.
# This may be replaced when dependencies are built.
