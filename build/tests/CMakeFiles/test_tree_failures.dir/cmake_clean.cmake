file(REMOVE_RECURSE
  "CMakeFiles/test_tree_failures.dir/trees/test_tree_failures.cpp.o"
  "CMakeFiles/test_tree_failures.dir/trees/test_tree_failures.cpp.o.d"
  "test_tree_failures"
  "test_tree_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
