# Empty dependencies file for test_sim_backpressure.
# This may be replaced when dependencies are built.
