file(REMOVE_RECURSE
  "CMakeFiles/test_sim_backpressure.dir/sim/test_sim_backpressure.cpp.o"
  "CMakeFiles/test_sim_backpressure.dir/sim/test_sim_backpressure.cpp.o.d"
  "test_sim_backpressure"
  "test_sim_backpressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_backpressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
