file(REMOVE_RECURSE
  "CMakeFiles/test_node_id.dir/common/test_node_id.cpp.o"
  "CMakeFiles/test_node_id.dir/common/test_node_id.cpp.o.d"
  "test_node_id"
  "test_node_id.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_id.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
