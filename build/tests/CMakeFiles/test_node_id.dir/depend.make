# Empty dependencies file for test_node_id.
# This may be replaced when dependencies are built.
