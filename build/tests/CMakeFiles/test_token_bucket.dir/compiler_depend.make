# Empty compiler generated dependencies file for test_token_bucket.
# This may be replaced when dependencies are built.
