file(REMOVE_RECURSE
  "CMakeFiles/test_token_bucket.dir/net/test_token_bucket.cpp.o"
  "CMakeFiles/test_token_bucket.dir/net/test_token_bucket.cpp.o.d"
  "test_token_bucket"
  "test_token_bucket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_token_bucket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
