file(REMOVE_RECURSE
  "CMakeFiles/test_sim_control.dir/sim/test_sim_control.cpp.o"
  "CMakeFiles/test_sim_control.dir/sim/test_sim_control.cpp.o.d"
  "test_sim_control"
  "test_sim_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
