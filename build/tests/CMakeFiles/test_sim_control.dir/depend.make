# Empty dependencies file for test_sim_control.
# This may be replaced when dependencies are built.
