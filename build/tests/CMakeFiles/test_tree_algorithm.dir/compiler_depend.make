# Empty compiler generated dependencies file for test_tree_algorithm.
# This may be replaced when dependencies are built.
