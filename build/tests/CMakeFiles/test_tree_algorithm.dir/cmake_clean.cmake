file(REMOVE_RECURSE
  "CMakeFiles/test_tree_algorithm.dir/trees/test_tree_algorithm.cpp.o"
  "CMakeFiles/test_tree_algorithm.dir/trees/test_tree_algorithm.cpp.o.d"
  "test_tree_algorithm"
  "test_tree_algorithm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_algorithm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
