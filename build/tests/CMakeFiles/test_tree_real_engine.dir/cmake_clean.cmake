file(REMOVE_RECURSE
  "CMakeFiles/test_tree_real_engine.dir/trees/test_tree_real_engine.cpp.o"
  "CMakeFiles/test_tree_real_engine.dir/trees/test_tree_real_engine.cpp.o.d"
  "test_tree_real_engine"
  "test_tree_real_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_real_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
