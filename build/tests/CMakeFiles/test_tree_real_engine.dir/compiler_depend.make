# Empty compiler generated dependencies file for test_tree_real_engine.
# This may be replaced when dependencies are built.
