# Empty dependencies file for test_engine_advanced.
# This may be replaced when dependencies are built.
