file(REMOVE_RECURSE
  "CMakeFiles/test_engine_advanced.dir/engine/test_engine_advanced.cpp.o"
  "CMakeFiles/test_engine_advanced.dir/engine/test_engine_advanced.cpp.o.d"
  "test_engine_advanced"
  "test_engine_advanced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_advanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
