file(REMOVE_RECURSE
  "CMakeFiles/test_observer.dir/observer/test_observer.cpp.o"
  "CMakeFiles/test_observer.dir/observer/test_observer.cpp.o.d"
  "test_observer"
  "test_observer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_observer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
