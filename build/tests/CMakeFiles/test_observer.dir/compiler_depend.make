# Empty compiler generated dependencies file for test_observer.
# This may be replaced when dependencies are built.
