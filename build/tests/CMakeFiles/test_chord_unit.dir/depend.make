# Empty dependencies file for test_chord_unit.
# This may be replaced when dependencies are built.
