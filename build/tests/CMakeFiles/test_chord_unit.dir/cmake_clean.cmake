file(REMOVE_RECURSE
  "CMakeFiles/test_chord_unit.dir/dht/test_chord_unit.cpp.o"
  "CMakeFiles/test_chord_unit.dir/dht/test_chord_unit.cpp.o.d"
  "test_chord_unit"
  "test_chord_unit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chord_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
