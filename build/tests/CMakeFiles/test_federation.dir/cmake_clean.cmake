file(REMOVE_RECURSE
  "CMakeFiles/test_federation.dir/federation/test_federation.cpp.o"
  "CMakeFiles/test_federation.dir/federation/test_federation.cpp.o.d"
  "test_federation"
  "test_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
