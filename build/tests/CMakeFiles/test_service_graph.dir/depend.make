# Empty dependencies file for test_service_graph.
# This may be replaced when dependencies are built.
