file(REMOVE_RECURSE
  "CMakeFiles/test_service_graph.dir/federation/test_service_graph.cpp.o"
  "CMakeFiles/test_service_graph.dir/federation/test_service_graph.cpp.o.d"
  "test_service_graph"
  "test_service_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_service_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
