file(REMOVE_RECURSE
  "CMakeFiles/test_trace_local.dir/engine/test_trace_local.cpp.o"
  "CMakeFiles/test_trace_local.dir/engine/test_trace_local.cpp.o.d"
  "test_trace_local"
  "test_trace_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
