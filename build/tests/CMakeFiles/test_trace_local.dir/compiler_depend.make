# Empty compiler generated dependencies file for test_trace_local.
# This may be replaced when dependencies are built.
