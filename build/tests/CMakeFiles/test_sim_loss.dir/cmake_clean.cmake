file(REMOVE_RECURSE
  "CMakeFiles/test_sim_loss.dir/sim/test_sim_loss.cpp.o"
  "CMakeFiles/test_sim_loss.dir/sim/test_sim_loss.cpp.o.d"
  "test_sim_loss"
  "test_sim_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
