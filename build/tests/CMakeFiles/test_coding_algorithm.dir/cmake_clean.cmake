file(REMOVE_RECURSE
  "CMakeFiles/test_coding_algorithm.dir/coding/test_coding_algorithm.cpp.o"
  "CMakeFiles/test_coding_algorithm.dir/coding/test_coding_algorithm.cpp.o.d"
  "test_coding_algorithm"
  "test_coding_algorithm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coding_algorithm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
