# Empty compiler generated dependencies file for test_coding_algorithm.
# This may be replaced when dependencies are built.
