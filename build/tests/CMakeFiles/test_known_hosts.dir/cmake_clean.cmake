file(REMOVE_RECURSE
  "CMakeFiles/test_known_hosts.dir/algorithm/test_known_hosts.cpp.o"
  "CMakeFiles/test_known_hosts.dir/algorithm/test_known_hosts.cpp.o.d"
  "test_known_hosts"
  "test_known_hosts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_known_hosts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
