# Empty dependencies file for test_known_hosts.
# This may be replaced when dependencies are built.
