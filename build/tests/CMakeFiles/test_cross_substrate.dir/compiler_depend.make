# Empty compiler generated dependencies file for test_cross_substrate.
# This may be replaced when dependencies are built.
