file(REMOVE_RECURSE
  "CMakeFiles/test_cross_substrate.dir/sim/test_cross_substrate.cpp.o"
  "CMakeFiles/test_cross_substrate.dir/sim/test_cross_substrate.cpp.o.d"
  "test_cross_substrate"
  "test_cross_substrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cross_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
