# Empty dependencies file for test_bandwidth.
# This may be replaced when dependencies are built.
