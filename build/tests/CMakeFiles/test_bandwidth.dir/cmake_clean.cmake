file(REMOVE_RECURSE
  "CMakeFiles/test_bandwidth.dir/net/test_bandwidth.cpp.o"
  "CMakeFiles/test_bandwidth.dir/net/test_bandwidth.cpp.o.d"
  "test_bandwidth"
  "test_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
