# Empty dependencies file for iov_observerd.
# This may be replaced when dependencies are built.
