file(REMOVE_RECURSE
  "CMakeFiles/iov_observerd.dir/iov_observerd.cpp.o"
  "CMakeFiles/iov_observerd.dir/iov_observerd.cpp.o.d"
  "iov_observerd"
  "iov_observerd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iov_observerd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
