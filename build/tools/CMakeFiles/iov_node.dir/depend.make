# Empty dependencies file for iov_node.
# This may be replaced when dependencies are built.
