file(REMOVE_RECURSE
  "CMakeFiles/iov_node.dir/iov_node.cpp.o"
  "CMakeFiles/iov_node.dir/iov_node.cpp.o.d"
  "iov_node"
  "iov_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iov_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
