file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_overhead_vs_size.dir/bench_fig17_overhead_vs_size.cpp.o"
  "CMakeFiles/bench_fig17_overhead_vs_size.dir/bench_fig17_overhead_vs_size.cpp.o.d"
  "bench_fig17_overhead_vs_size"
  "bench_fig17_overhead_vs_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_overhead_vs_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
