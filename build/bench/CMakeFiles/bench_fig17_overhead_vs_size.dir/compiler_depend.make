# Empty compiler generated dependencies file for bench_fig17_overhead_vs_size.
# This may be replaced when dependencies are built.
