file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_large_buffers.dir/bench_fig07_large_buffers.cpp.o"
  "CMakeFiles/bench_fig07_large_buffers.dir/bench_fig07_large_buffers.cpp.o.d"
  "bench_fig07_large_buffers"
  "bench_fig07_large_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_large_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
