# Empty dependencies file for bench_fig07_large_buffers.
# This may be replaced when dependencies are built.
