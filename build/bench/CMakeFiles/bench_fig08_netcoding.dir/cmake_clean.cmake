file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_netcoding.dir/bench_fig08_netcoding.cpp.o"
  "CMakeFiles/bench_fig08_netcoding.dir/bench_fig08_netcoding.cpp.o.d"
  "bench_fig08_netcoding"
  "bench_fig08_netcoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_netcoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
