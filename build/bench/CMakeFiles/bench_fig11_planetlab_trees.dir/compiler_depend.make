# Empty compiler generated dependencies file for bench_fig11_planetlab_trees.
# This may be replaced when dependencies are built.
