# Empty compiler generated dependencies file for bench_fig15_federation_overhead.
# This may be replaced when dependencies are built.
