# Empty dependencies file for bench_fig18_pernode_overhead.
# This may be replaced when dependencies are built.
