file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_federation_topology.dir/bench_fig14_federation_topology.cpp.o"
  "CMakeFiles/bench_fig14_federation_topology.dir/bench_fig14_federation_topology.cpp.o.d"
  "bench_fig14_federation_topology"
  "bench_fig14_federation_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_federation_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
