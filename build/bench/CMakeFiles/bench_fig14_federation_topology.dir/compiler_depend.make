# Empty compiler generated dependencies file for bench_fig14_federation_topology.
# This may be replaced when dependencies are built.
