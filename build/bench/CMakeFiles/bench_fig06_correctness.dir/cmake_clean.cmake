file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_correctness.dir/bench_fig06_correctness.cpp.o"
  "CMakeFiles/bench_fig06_correctness.dir/bench_fig06_correctness.cpp.o.d"
  "bench_fig06_correctness"
  "bench_fig06_correctness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_correctness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
