file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_aware_over_time.dir/bench_fig16_aware_over_time.cpp.o"
  "CMakeFiles/bench_fig16_aware_over_time.dir/bench_fig16_aware_over_time.cpp.o.d"
  "bench_fig16_aware_over_time"
  "bench_fig16_aware_over_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_aware_over_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
