# Empty compiler generated dependencies file for bench_fig16_aware_over_time.
# This may be replaced when dependencies are built.
