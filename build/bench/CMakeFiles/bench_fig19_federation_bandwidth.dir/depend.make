# Empty dependencies file for bench_fig19_federation_bandwidth.
# This may be replaced when dependencies are built.
