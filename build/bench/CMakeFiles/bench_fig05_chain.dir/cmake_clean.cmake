file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_chain.dir/bench_fig05_chain.cpp.o"
  "CMakeFiles/bench_fig05_chain.dir/bench_fig05_chain.cpp.o.d"
  "bench_fig05_chain"
  "bench_fig05_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
