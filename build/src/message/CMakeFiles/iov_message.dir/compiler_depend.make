# Empty compiler generated dependencies file for iov_message.
# This may be replaced when dependencies are built.
