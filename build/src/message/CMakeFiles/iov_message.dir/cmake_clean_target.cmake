file(REMOVE_RECURSE
  "libiov_message.a"
)
