file(REMOVE_RECURSE
  "CMakeFiles/iov_message.dir/buffer.cpp.o"
  "CMakeFiles/iov_message.dir/buffer.cpp.o.d"
  "CMakeFiles/iov_message.dir/codec.cpp.o"
  "CMakeFiles/iov_message.dir/codec.cpp.o.d"
  "CMakeFiles/iov_message.dir/msg.cpp.o"
  "CMakeFiles/iov_message.dir/msg.cpp.o.d"
  "CMakeFiles/iov_message.dir/types.cpp.o"
  "CMakeFiles/iov_message.dir/types.cpp.o.d"
  "libiov_message.a"
  "libiov_message.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iov_message.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
