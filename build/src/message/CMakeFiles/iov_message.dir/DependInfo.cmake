
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/message/buffer.cpp" "src/message/CMakeFiles/iov_message.dir/buffer.cpp.o" "gcc" "src/message/CMakeFiles/iov_message.dir/buffer.cpp.o.d"
  "/root/repo/src/message/codec.cpp" "src/message/CMakeFiles/iov_message.dir/codec.cpp.o" "gcc" "src/message/CMakeFiles/iov_message.dir/codec.cpp.o.d"
  "/root/repo/src/message/msg.cpp" "src/message/CMakeFiles/iov_message.dir/msg.cpp.o" "gcc" "src/message/CMakeFiles/iov_message.dir/msg.cpp.o.d"
  "/root/repo/src/message/types.cpp" "src/message/CMakeFiles/iov_message.dir/types.cpp.o" "gcc" "src/message/CMakeFiles/iov_message.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/iov_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
