file(REMOVE_RECURSE
  "libiov_dht.a"
)
