# Empty compiler generated dependencies file for iov_dht.
# This may be replaced when dependencies are built.
