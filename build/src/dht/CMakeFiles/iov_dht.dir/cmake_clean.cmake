file(REMOVE_RECURSE
  "CMakeFiles/iov_dht.dir/chord.cpp.o"
  "CMakeFiles/iov_dht.dir/chord.cpp.o.d"
  "libiov_dht.a"
  "libiov_dht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iov_dht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
