file(REMOVE_RECURSE
  "libiov_common.a"
)
