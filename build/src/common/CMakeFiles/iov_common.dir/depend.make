# Empty dependencies file for iov_common.
# This may be replaced when dependencies are built.
