file(REMOVE_RECURSE
  "CMakeFiles/iov_common.dir/clock.cpp.o"
  "CMakeFiles/iov_common.dir/clock.cpp.o.d"
  "CMakeFiles/iov_common.dir/logging.cpp.o"
  "CMakeFiles/iov_common.dir/logging.cpp.o.d"
  "CMakeFiles/iov_common.dir/node_id.cpp.o"
  "CMakeFiles/iov_common.dir/node_id.cpp.o.d"
  "CMakeFiles/iov_common.dir/rng.cpp.o"
  "CMakeFiles/iov_common.dir/rng.cpp.o.d"
  "CMakeFiles/iov_common.dir/stats.cpp.o"
  "CMakeFiles/iov_common.dir/stats.cpp.o.d"
  "CMakeFiles/iov_common.dir/strings.cpp.o"
  "CMakeFiles/iov_common.dir/strings.cpp.o.d"
  "libiov_common.a"
  "libiov_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iov_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
