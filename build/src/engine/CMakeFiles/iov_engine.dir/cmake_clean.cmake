file(REMOVE_RECURSE
  "CMakeFiles/iov_engine.dir/engine.cpp.o"
  "CMakeFiles/iov_engine.dir/engine.cpp.o.d"
  "CMakeFiles/iov_engine.dir/peer_link.cpp.o"
  "CMakeFiles/iov_engine.dir/peer_link.cpp.o.d"
  "CMakeFiles/iov_engine.dir/report.cpp.o"
  "CMakeFiles/iov_engine.dir/report.cpp.o.d"
  "libiov_engine.a"
  "libiov_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iov_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
