file(REMOVE_RECURSE
  "libiov_engine.a"
)
