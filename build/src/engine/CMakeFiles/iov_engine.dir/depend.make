# Empty dependencies file for iov_engine.
# This may be replaced when dependencies are built.
