file(REMOVE_RECURSE
  "CMakeFiles/iov_algorithm.dir/algorithm.cpp.o"
  "CMakeFiles/iov_algorithm.dir/algorithm.cpp.o.d"
  "CMakeFiles/iov_algorithm.dir/gossip.cpp.o"
  "CMakeFiles/iov_algorithm.dir/gossip.cpp.o.d"
  "CMakeFiles/iov_algorithm.dir/known_hosts.cpp.o"
  "CMakeFiles/iov_algorithm.dir/known_hosts.cpp.o.d"
  "CMakeFiles/iov_algorithm.dir/relay.cpp.o"
  "CMakeFiles/iov_algorithm.dir/relay.cpp.o.d"
  "libiov_algorithm.a"
  "libiov_algorithm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iov_algorithm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
