file(REMOVE_RECURSE
  "libiov_algorithm.a"
)
