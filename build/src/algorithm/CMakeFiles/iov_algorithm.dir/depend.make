# Empty dependencies file for iov_algorithm.
# This may be replaced when dependencies are built.
