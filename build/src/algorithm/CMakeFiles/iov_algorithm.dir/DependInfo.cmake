
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algorithm/algorithm.cpp" "src/algorithm/CMakeFiles/iov_algorithm.dir/algorithm.cpp.o" "gcc" "src/algorithm/CMakeFiles/iov_algorithm.dir/algorithm.cpp.o.d"
  "/root/repo/src/algorithm/gossip.cpp" "src/algorithm/CMakeFiles/iov_algorithm.dir/gossip.cpp.o" "gcc" "src/algorithm/CMakeFiles/iov_algorithm.dir/gossip.cpp.o.d"
  "/root/repo/src/algorithm/known_hosts.cpp" "src/algorithm/CMakeFiles/iov_algorithm.dir/known_hosts.cpp.o" "gcc" "src/algorithm/CMakeFiles/iov_algorithm.dir/known_hosts.cpp.o.d"
  "/root/repo/src/algorithm/relay.cpp" "src/algorithm/CMakeFiles/iov_algorithm.dir/relay.cpp.o" "gcc" "src/algorithm/CMakeFiles/iov_algorithm.dir/relay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/iov_common.dir/DependInfo.cmake"
  "/root/repo/build/src/message/CMakeFiles/iov_message.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/iov_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
