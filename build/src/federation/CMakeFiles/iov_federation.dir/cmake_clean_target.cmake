file(REMOVE_RECURSE
  "libiov_federation.a"
)
