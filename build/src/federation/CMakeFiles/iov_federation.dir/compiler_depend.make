# Empty compiler generated dependencies file for iov_federation.
# This may be replaced when dependencies are built.
