file(REMOVE_RECURSE
  "CMakeFiles/iov_federation.dir/federation_algorithm.cpp.o"
  "CMakeFiles/iov_federation.dir/federation_algorithm.cpp.o.d"
  "CMakeFiles/iov_federation.dir/scenario.cpp.o"
  "CMakeFiles/iov_federation.dir/scenario.cpp.o.d"
  "CMakeFiles/iov_federation.dir/service_graph.cpp.o"
  "CMakeFiles/iov_federation.dir/service_graph.cpp.o.d"
  "libiov_federation.a"
  "libiov_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iov_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
