# Empty dependencies file for iov_apps.
# This may be replaced when dependencies are built.
