file(REMOVE_RECURSE
  "libiov_apps.a"
)
