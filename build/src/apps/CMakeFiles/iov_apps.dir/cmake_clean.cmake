file(REMOVE_RECURSE
  "CMakeFiles/iov_apps.dir/sink.cpp.o"
  "CMakeFiles/iov_apps.dir/sink.cpp.o.d"
  "CMakeFiles/iov_apps.dir/source.cpp.o"
  "CMakeFiles/iov_apps.dir/source.cpp.o.d"
  "CMakeFiles/iov_apps.dir/streaming.cpp.o"
  "CMakeFiles/iov_apps.dir/streaming.cpp.o.d"
  "libiov_apps.a"
  "libiov_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iov_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
