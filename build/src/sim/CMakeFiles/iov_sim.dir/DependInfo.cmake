
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/sim_net.cpp" "src/sim/CMakeFiles/iov_sim.dir/sim_net.cpp.o" "gcc" "src/sim/CMakeFiles/iov_sim.dir/sim_net.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/iov_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/algorithm/CMakeFiles/iov_algorithm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/iov_net.dir/DependInfo.cmake"
  "/root/repo/build/src/message/CMakeFiles/iov_message.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/iov_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
