file(REMOVE_RECURSE
  "libiov_sim.a"
)
