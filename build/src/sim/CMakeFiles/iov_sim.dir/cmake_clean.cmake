file(REMOVE_RECURSE
  "CMakeFiles/iov_sim.dir/sim_net.cpp.o"
  "CMakeFiles/iov_sim.dir/sim_net.cpp.o.d"
  "libiov_sim.a"
  "libiov_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iov_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
