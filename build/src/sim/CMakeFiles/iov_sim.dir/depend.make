# Empty dependencies file for iov_sim.
# This may be replaced when dependencies are built.
