file(REMOVE_RECURSE
  "CMakeFiles/iov_coding.dir/coding_algorithm.cpp.o"
  "CMakeFiles/iov_coding.dir/coding_algorithm.cpp.o.d"
  "CMakeFiles/iov_coding.dir/decoder.cpp.o"
  "CMakeFiles/iov_coding.dir/decoder.cpp.o.d"
  "CMakeFiles/iov_coding.dir/gf256.cpp.o"
  "CMakeFiles/iov_coding.dir/gf256.cpp.o.d"
  "libiov_coding.a"
  "libiov_coding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iov_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
