# Empty dependencies file for iov_coding.
# This may be replaced when dependencies are built.
