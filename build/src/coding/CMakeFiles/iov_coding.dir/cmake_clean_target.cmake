file(REMOVE_RECURSE
  "libiov_coding.a"
)
