file(REMOVE_RECURSE
  "CMakeFiles/iov_trees.dir/scenario.cpp.o"
  "CMakeFiles/iov_trees.dir/scenario.cpp.o.d"
  "CMakeFiles/iov_trees.dir/tree_algorithm.cpp.o"
  "CMakeFiles/iov_trees.dir/tree_algorithm.cpp.o.d"
  "libiov_trees.a"
  "libiov_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iov_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
