# Empty dependencies file for iov_trees.
# This may be replaced when dependencies are built.
