file(REMOVE_RECURSE
  "libiov_trees.a"
)
