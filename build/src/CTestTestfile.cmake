# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("message")
subdirs("net")
subdirs("engine")
subdirs("algorithm")
subdirs("observer")
subdirs("sim")
subdirs("coding")
subdirs("trees")
subdirs("federation")
subdirs("apps")
subdirs("pubsub")
subdirs("dht")
