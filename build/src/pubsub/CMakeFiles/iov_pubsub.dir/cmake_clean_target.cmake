file(REMOVE_RECURSE
  "libiov_pubsub.a"
)
