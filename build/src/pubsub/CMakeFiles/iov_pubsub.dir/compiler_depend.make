# Empty compiler generated dependencies file for iov_pubsub.
# This may be replaced when dependencies are built.
