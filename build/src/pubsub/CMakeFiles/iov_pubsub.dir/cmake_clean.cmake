file(REMOVE_RECURSE
  "CMakeFiles/iov_pubsub.dir/predicate.cpp.o"
  "CMakeFiles/iov_pubsub.dir/predicate.cpp.o.d"
  "CMakeFiles/iov_pubsub.dir/pubsub_algorithm.cpp.o"
  "CMakeFiles/iov_pubsub.dir/pubsub_algorithm.cpp.o.d"
  "libiov_pubsub.a"
  "libiov_pubsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iov_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
