
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pubsub/predicate.cpp" "src/pubsub/CMakeFiles/iov_pubsub.dir/predicate.cpp.o" "gcc" "src/pubsub/CMakeFiles/iov_pubsub.dir/predicate.cpp.o.d"
  "/root/repo/src/pubsub/pubsub_algorithm.cpp" "src/pubsub/CMakeFiles/iov_pubsub.dir/pubsub_algorithm.cpp.o" "gcc" "src/pubsub/CMakeFiles/iov_pubsub.dir/pubsub_algorithm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algorithm/CMakeFiles/iov_algorithm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/iov_net.dir/DependInfo.cmake"
  "/root/repo/build/src/message/CMakeFiles/iov_message.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/iov_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
