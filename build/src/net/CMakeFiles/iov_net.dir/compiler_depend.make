# Empty compiler generated dependencies file for iov_net.
# This may be replaced when dependencies are built.
