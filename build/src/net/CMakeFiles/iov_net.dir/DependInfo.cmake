
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/bandwidth.cpp" "src/net/CMakeFiles/iov_net.dir/bandwidth.cpp.o" "gcc" "src/net/CMakeFiles/iov_net.dir/bandwidth.cpp.o.d"
  "/root/repo/src/net/framing.cpp" "src/net/CMakeFiles/iov_net.dir/framing.cpp.o" "gcc" "src/net/CMakeFiles/iov_net.dir/framing.cpp.o.d"
  "/root/repo/src/net/socket.cpp" "src/net/CMakeFiles/iov_net.dir/socket.cpp.o" "gcc" "src/net/CMakeFiles/iov_net.dir/socket.cpp.o.d"
  "/root/repo/src/net/throughput.cpp" "src/net/CMakeFiles/iov_net.dir/throughput.cpp.o" "gcc" "src/net/CMakeFiles/iov_net.dir/throughput.cpp.o.d"
  "/root/repo/src/net/token_bucket.cpp" "src/net/CMakeFiles/iov_net.dir/token_bucket.cpp.o" "gcc" "src/net/CMakeFiles/iov_net.dir/token_bucket.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/iov_common.dir/DependInfo.cmake"
  "/root/repo/build/src/message/CMakeFiles/iov_message.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
