file(REMOVE_RECURSE
  "libiov_net.a"
)
