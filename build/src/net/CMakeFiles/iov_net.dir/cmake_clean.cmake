file(REMOVE_RECURSE
  "CMakeFiles/iov_net.dir/bandwidth.cpp.o"
  "CMakeFiles/iov_net.dir/bandwidth.cpp.o.d"
  "CMakeFiles/iov_net.dir/framing.cpp.o"
  "CMakeFiles/iov_net.dir/framing.cpp.o.d"
  "CMakeFiles/iov_net.dir/socket.cpp.o"
  "CMakeFiles/iov_net.dir/socket.cpp.o.d"
  "CMakeFiles/iov_net.dir/throughput.cpp.o"
  "CMakeFiles/iov_net.dir/throughput.cpp.o.d"
  "CMakeFiles/iov_net.dir/token_bucket.cpp.o"
  "CMakeFiles/iov_net.dir/token_bucket.cpp.o.d"
  "libiov_net.a"
  "libiov_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iov_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
