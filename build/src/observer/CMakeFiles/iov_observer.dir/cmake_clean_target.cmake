file(REMOVE_RECURSE
  "libiov_observer.a"
)
