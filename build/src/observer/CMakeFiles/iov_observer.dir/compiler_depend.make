# Empty compiler generated dependencies file for iov_observer.
# This may be replaced when dependencies are built.
