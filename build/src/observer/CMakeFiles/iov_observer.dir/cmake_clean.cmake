file(REMOVE_RECURSE
  "CMakeFiles/iov_observer.dir/observer.cpp.o"
  "CMakeFiles/iov_observer.dir/observer.cpp.o.d"
  "CMakeFiles/iov_observer.dir/proxy.cpp.o"
  "CMakeFiles/iov_observer.dir/proxy.cpp.o.d"
  "libiov_observer.a"
  "libiov_observer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iov_observer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
